package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

func testHeader() Header {
	return Header{
		Object: "atomic-fi", ObjName: "C", Procs: 2, Ops: 4,
		Workload: "uniform:inc", Policy: "immediate", Seed: 42, Tolerance: 1,
	}
}

func testEvents() ([]history.Event, []uint64) {
	evs := []history.Event{
		{Kind: history.KindInvoke, Proc: 0, Obj: "C", Op: spec.MakeOp("inc")},
		{Kind: history.KindInvoke, Proc: 1, Obj: "C", Op: spec.MakeOp1("add", 7)},
		{Kind: history.KindRespond, Proc: 0, Obj: "C", Resp: 1},
		{Kind: history.KindRespond, Proc: 1, Obj: "C", Resp: -8},
		{Kind: history.KindInvoke, Proc: 0, Obj: "C", Op: spec.MakeOp2("cas", 1, 2)},
		{Kind: history.KindRespond, Proc: 0, Obj: "C", Resp: 0},
	}
	pos := []uint64{0, 0, 1, 2, 2, 3}
	return evs, pos
}

func writeLog(t *testing.T, pol SyncPolicy) (string, []history.Event, []uint64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wal")
	l, err := Create(path, testHeader(), pol)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	evs, pos := testEvents()
	for i, e := range evs {
		if err := l.Append(e, pos[i]); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path, evs, pos
}

func TestRoundTrip(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNever, SyncAlways, SyncPolicy(2)} {
		path, evs, pos := writeLog(t, pol)
		rec, err := Recover(path)
		if err != nil {
			t.Fatalf("pol %v: Recover: %v", pol, err)
		}
		if rec.Torn {
			t.Fatalf("pol %v: clean log reported torn at %d", pol, rec.TornAt)
		}
		if rec.Header != testHeader() {
			t.Fatalf("pol %v: header = %+v", pol, rec.Header)
		}
		if !reflect.DeepEqual(rec.Events, evs) || !reflect.DeepEqual(rec.Pos, pos) {
			t.Fatalf("pol %v: events mismatch:\n got %+v %v\nwant %+v %v",
				pol, rec.Events, rec.Pos, evs, pos)
		}
		if rec.Frames != len(evs) {
			t.Fatalf("pol %v: Frames = %d, want %d", pol, rec.Frames, len(evs))
		}
		if got := rec.LastCommit(); got != 3 {
			t.Fatalf("pol %v: LastCommit = %d, want 3", pol, got)
		}
	}
}

func TestTornTail(t *testing.T) {
	path, evs, _ := writeLog(t, SyncNever)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cutting the file at every byte length must recover a prefix of the
	// events, never an error (magic+header occupy the first frames; cuts
	// inside those are the only error cases). A cut exactly on a frame
	// boundary is indistinguishable from a clean shorter log, so Torn is
	// only required for mid-frame cuts.
	hdrEnd := headerEnd(t, data)
	boundary := map[int]bool{len(data): true}
	for off := hdrEnd; off < int64(len(data)); {
		_, next, ok := readFrame(data, off)
		if !ok {
			t.Fatal("pristine log has a bad frame")
		}
		boundary[int(off)] = true
		off = next
	}
	for cut := len(data) - 1; cut >= 0; cut-- {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(path)
		if int64(cut) < hdrEnd {
			if err == nil {
				t.Fatalf("cut %d (inside magic/header): want error", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		if !boundary[cut] && !rec.Torn {
			t.Fatalf("cut %d: mid-frame tail not reported torn", cut)
		}
		if boundary[cut] && rec.Torn {
			t.Fatalf("cut %d: frame-boundary cut reported torn", cut)
		}
		if len(rec.Events) > len(evs) {
			t.Fatalf("cut %d: recovered %d events from %d", cut, len(rec.Events), len(evs))
		}
		for i, e := range rec.Events {
			if !reflect.DeepEqual(e, evs[i]) {
				t.Fatalf("cut %d: event %d = %+v, want %+v", cut, i, e, evs[i])
			}
		}
	}
}

// headerEnd returns the offset just past the header frame.
func headerEnd(t *testing.T, data []byte) int64 {
	t.Helper()
	_, next, ok := readFrame(data, int64(len(magic)))
	if !ok {
		t.Fatal("header frame unreadable in pristine log")
	}
	return next
}

func TestCorruptMiddle(t *testing.T) {
	path, evs, _ := writeLog(t, SyncNever)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdrEnd := headerEnd(t, data)
	// Flip one bit somewhere in the event region: recovery must stop at or
	// before the damaged frame and return only intact prefix events.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		off := hdrEnd + rng.Int63n(int64(len(data))-hdrEnd)
		bad := append([]byte(nil), data...)
		bad[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(path)
		if err != nil {
			t.Fatalf("trial %d off %d: Recover: %v", trial, off, err)
		}
		if !rec.Torn {
			t.Fatalf("trial %d off %d: bit flip not detected", trial, off)
		}
		for i, e := range rec.Events {
			if !reflect.DeepEqual(e, evs[i]) {
				t.Fatalf("trial %d: recovered event %d = %+v, want %+v", trial, i, e, evs[i])
			}
		}
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.wal")
	if err := os.WriteFile(path, []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); err == nil {
		t.Fatal("Recover accepted junk file")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"never", SyncNever, false},
		{"", SyncNever, false},
		{"interval:1", SyncPolicy(1), false},
		{"interval:4096", SyncPolicy(4096), false},
		{"interval:0", 0, true},
		{"interval:x", 0, true},
		{"sometimes", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if SyncAlways.String() != "always" || SyncNever.String() != "never" ||
		SyncPolicy(8).String() != "interval:8" {
		t.Error("SyncPolicy.String round-trip broken")
	}
}

// quickEvent is the testing/quick generator domain for one event: arbitrary
// kind choice, proc, pos, method bytes, args, and response.
type quickEvent struct {
	Respond bool
	Proc    uint16
	Pos     uint64
	Method  string
	NArgs   uint8
	Args    [2]int64
	Resp    int64
}

func (q quickEvent) event() (history.Event, uint64) {
	e := history.Event{Proc: int(q.Proc), Obj: "C"}
	if q.Respond {
		e.Kind = history.KindRespond
		e.Resp = q.Resp
	} else {
		e.Kind = history.KindInvoke
		e.Op.Method = q.Method
		e.Op.NArgs = int(q.NArgs % 3)
		for i := 0; i < e.Op.NArgs; i++ {
			e.Op.Args[i] = q.Args[i]
		}
	}
	return e, q.Pos
}

// TestQuickFrameRoundTrip is the satellite property test: encode/decode of
// event payloads round-trips for arbitrary events, and flipping a bit at a
// random offset of the encoding never round-trips silently to a different
// event — it either fails to decode or (for the rare compensating flips
// inside ignored padding, which this encoding doesn't have) decodes equal.
func TestQuickFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(q quickEvent, corruptAt uint16) bool {
		e, pos := q.event()
		b := AppendEventPayload(nil, e, pos)
		got, gotPos, err := DecodeEventPayload(b)
		if err != nil {
			t.Logf("decode clean: %v", err)
			return false
		}
		got.Obj = e.Obj // obj name travels in the header, not the payload
		if !reflect.DeepEqual(got, e) || gotPos != pos {
			t.Logf("round-trip mismatch: %+v/%d vs %+v/%d", got, gotPos, e, pos)
			return false
		}
		// Corrupt one bit at a random offset; decode must not panic, and if
		// it succeeds the result must differ from the original (the frame
		// CRC is what catches these in the full log path — here we assert
		// the payload decoder itself is safe on damaged input).
		bad := append([]byte(nil), b...)
		off := int(corruptAt) % len(bad)
		bad[off] ^= 1 << uint(rng.Intn(8))
		ce, cpos, cerr := DecodeEventPayload(bad)
		if cerr == nil {
			ce.Obj = e.Obj
			if reflect.DeepEqual(ce, e) && cpos == pos {
				t.Logf("bit flip at %d decoded identically", off)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
