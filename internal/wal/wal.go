// Package wal is the durable write-ahead commit log of the live runtime:
// an append-only file of CRC-framed records carrying the run's merged
// event stream (the commit log a live.CommitSink receives), plus the
// recovery reader that replays a log back into events — truncating any
// torn tail at the first bad frame, which is what makes a crash at an
// arbitrary point recoverable to the longest valid prefix.
//
// # File format
//
// A log is the 8-byte magic "ELINWAL1", one header frame, then one frame
// per event. Every frame is
//
//	len   uint32 LE   payload length
//	crc   uint32 LE   IEEE CRC-32 of the payload
//	payload
//
// The header payload is a JSON Header (byte 0x00 first, distinguishing it
// from event payloads); an event payload is the compact binary encoding of
// one history.Event plus its merge position (commit ticket for responses,
// sequencer stamp for invocations). Everything after the first frame whose
// length is implausible or whose CRC fails is a torn tail: Recover stops
// there, reports Torn, and returns the events before it — a frame is
// either wholly durable or it never happened.
//
// # Durability knob
//
// Appends are buffered; the fsync policy ("always", "interval:N",
// "never") trades commit durability against throughput: always fsyncs
// every append (each commit durable before the next), interval:N fsyncs
// every N appends (at most N-1 commits lost to an OS crash; a process
// crash alone loses nothing buffered once Flush runs), never leaves
// syncing to the OS.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/history"
)

// magic identifies a log file (8 bytes, version in the last byte).
var magic = [8]byte{'E', 'L', 'I', 'N', 'W', 'A', 'L', '1'}

// maxFrame bounds a frame payload; longer lengths are treated as
// corruption (an event payload is tens of bytes, a header well under 4k).
const maxFrame = 1 << 20

// Sync policies. Positive SyncPolicy values fsync every N appends.
const (
	SyncNever  SyncPolicy = 0  // buffered writes, OS decides when to sync
	SyncAlways SyncPolicy = -1 // fsync after every append
)

// SyncPolicy is the fsync cadence: SyncAlways, SyncNever, or a positive
// interval N (fsync every N appends).
type SyncPolicy int

// ParseSyncPolicy reads "always", "never", "interval:N" or "" (never).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "never":
		return SyncNever, nil
	case "always":
		return SyncAlways, nil
	}
	if rest, ok := strings.CutPrefix(s, "interval:"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n >= 1 {
			return SyncPolicy(n), nil
		}
	}
	return 0, fmt.Errorf("wal: sync policy %q (want always, never, or interval:N with N >= 1)", s)
}

// String renders the policy in ParseSyncPolicy grammar.
func (p SyncPolicy) String() string {
	switch {
	case p == SyncAlways:
		return "always"
	case p <= SyncNever:
		return "never"
	default:
		return fmt.Sprintf("interval:%d", int(p))
	}
}

// Header is the log's first frame: everything a recovery needs to rebuild
// the run without the process that wrote it — the registry names of the
// object and workload, the client count, and the seed that pins the
// object's response choices.
type Header struct {
	// Object is the registry name of the object under test.
	Object string `json:"object"`
	// ObjName is the object's name in recorded histories ("C", "R").
	ObjName string `json:"obj_name"`
	// Procs is the number of clients the run was started with.
	Procs int `json:"procs"`
	// Ops is the per-client operation budget.
	Ops int `json:"ops"`
	// Workload/Policy are the registry names driving the run.
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	// Seed pins the run's response choices — a recovered object must be
	// rebuilt with this seed or replay diverges.
	Seed int64 `json:"seed"`
	// Tolerance echoes the monitor tolerance the run was checked under.
	Tolerance int `json:"tolerance,omitempty"`
}

// Log is an open write-ahead log. Append is single-writer (the live
// runtime's merge loop); Recover reads files, not open Logs.
type Log struct {
	f       *os.File
	w       *bufio.Writer
	pol     SyncPolicy
	pending int // appends since the last fsync
	buf     []byte
}

// Create creates (truncating) a log file and writes magic plus header.
func Create(path string, h Header, pol SyncPolicy) (*Log, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	l := &Log{f: f, w: bufio.NewWriterSize(f, 1<<16), pol: pol}
	if _, err := l.w.Write(magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: encode header: %w", err)
	}
	if err := l.writeFrame(append([]byte{frameHeader}, hdr...)); err != nil {
		f.Close()
		return nil, err
	}
	if err := l.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Frame payload type tags (first payload byte).
const (
	frameHeader  = 0x00
	frameInvoke  = byte(history.KindInvoke)  // 0x01
	frameRespond = byte(history.KindRespond) // 0x02
)

// writeFrame frames and buffers one payload.
func (l *Log) writeFrame(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	return nil
}

// AppendEventPayload appends the binary encoding of one event (without
// framing) to b and returns the extended slice. Exported for the frame
// round-trip tests; Append is the writing path.
func AppendEventPayload(b []byte, e history.Event, pos uint64) []byte {
	b = append(b, byte(e.Kind))
	b = binary.AppendUvarint(b, uint64(e.Proc))
	b = binary.AppendUvarint(b, pos)
	if e.Kind == history.KindInvoke {
		b = binary.AppendUvarint(b, uint64(len(e.Op.Method)))
		b = append(b, e.Op.Method...)
		b = append(b, byte(e.Op.NArgs))
		for i := 0; i < e.Op.NArgs; i++ {
			b = binary.AppendVarint(b, e.Op.Args[i])
		}
	} else {
		b = binary.AppendVarint(b, e.Resp)
	}
	return b
}

// DecodeEventPayload decodes one event payload (the inverse of
// AppendEventPayload). The object name is not part of the payload — the
// caller substitutes the header's ObjName.
func DecodeEventPayload(b []byte) (e history.Event, pos uint64, err error) {
	bad := func(what string) (history.Event, uint64, error) {
		return history.Event{}, 0, fmt.Errorf("wal: bad event payload: %s", what)
	}
	if len(b) < 1 {
		return bad("empty")
	}
	kind := history.Kind(b[0])
	if kind != history.KindInvoke && kind != history.KindRespond {
		return bad(fmt.Sprintf("kind %d", b[0]))
	}
	b = b[1:]
	proc, n := binary.Uvarint(b)
	if n <= 0 || proc > 1<<31 {
		return bad("proc")
	}
	b = b[n:]
	pos, n = binary.Uvarint(b)
	if n <= 0 {
		return bad("pos")
	}
	b = b[n:]
	e = history.Event{Kind: kind, Proc: int(proc)}
	if kind == history.KindInvoke {
		mlen, n := binary.Uvarint(b)
		if n <= 0 || mlen > uint64(len(b)-n) {
			return bad("method length")
		}
		b = b[n:]
		e.Op.Method = string(b[:mlen])
		b = b[mlen:]
		if len(b) < 1 {
			return bad("nargs")
		}
		nargs := int(b[0])
		b = b[1:]
		if nargs < 0 || nargs > len(e.Op.Args) {
			return bad("nargs range")
		}
		e.Op.NArgs = nargs
		for i := 0; i < nargs; i++ {
			v, n := binary.Varint(b)
			if n <= 0 {
				return bad("arg")
			}
			e.Op.Args[i] = v
			b = b[n:]
		}
	} else {
		v, n := binary.Varint(b)
		if n <= 0 {
			return bad("resp")
		}
		e.Resp = v
		b = b[n:]
	}
	if len(b) != 0 {
		return bad("trailing bytes")
	}
	return e, pos, nil
}

// Append logs one merged event. It implements the live runtime's
// CommitSink contract: a response frame is the durability point of its
// commit ticket under the configured fsync policy.
func (l *Log) Append(e history.Event, pos uint64) error {
	l.buf = AppendEventPayload(l.buf[:0], e, pos)
	if err := l.writeFrame(l.buf); err != nil {
		return err
	}
	l.pending++
	switch {
	case l.pol == SyncAlways:
		return l.Sync()
	case l.pol > 0 && l.pending >= int(l.pol):
		return l.Sync()
	}
	return nil
}

// Flush pushes buffered frames to the OS (no fsync).
func (l *Log) Flush() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Sync flushes and fsyncs.
func (l *Log) Sync() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.pending = 0
	return nil
}

// Close flushes, syncs and closes the file. Safe to call after a crash
// cut — the log is closed at a frame boundary by construction.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Recovered is a log read back from disk.
type Recovered struct {
	// Header is the run description the log was created with.
	Header Header
	// Events is the merged event stream, in log order, with the header's
	// ObjName substituted; Pos carries each event's merge position.
	Events []history.Event
	Pos    []uint64
	// Frames counts the event frames recovered (excluding the header).
	Frames int
	// Torn reports a truncated tail: TornAt is the byte offset of the
	// first bad frame, and everything before it was recovered.
	Torn   bool
	TornAt int64
}

// LastCommit returns the highest response position in the log — the commit
// ticket a resumed run's sequencer must continue from.
func (r *Recovered) LastCommit() uint64 {
	var last uint64
	for i, e := range r.Events {
		if e.Kind == history.KindRespond && r.Pos[i] > last {
			last = r.Pos[i]
		}
	}
	return last
}

// Recover reads a log file back: magic and header must be intact (without
// them nothing is interpretable), then event frames are read until EOF or
// the first bad frame — implausible length, short read, CRC mismatch, or
// an undecodable payload — at which point the tail is declared torn and
// everything before it returned. A clean shutdown yields Torn false.
func Recover(path string) (*Recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("wal: recover %s: not a write-ahead log (bad magic)", path)
	}
	off := int64(len(magic))
	payload, next, ok := readFrame(data, off)
	if !ok || len(payload) < 1 || payload[0] != frameHeader {
		return nil, fmt.Errorf("wal: recover %s: header frame unreadable", path)
	}
	rec := &Recovered{}
	if err := json.Unmarshal(payload[1:], &rec.Header); err != nil {
		return nil, fmt.Errorf("wal: recover %s: header: %w", path, err)
	}
	off = next
	for off < int64(len(data)) {
		payload, next, ok = readFrame(data, off)
		if !ok {
			rec.Torn, rec.TornAt = true, off
			break
		}
		e, pos, err := DecodeEventPayload(payload)
		if err != nil {
			rec.Torn, rec.TornAt = true, off
			break
		}
		e.Obj = rec.Header.ObjName
		rec.Events = append(rec.Events, e)
		rec.Pos = append(rec.Pos, pos)
		rec.Frames++
		off = next
	}
	return rec, nil
}

// readFrame reads the frame at off, returning its payload and the next
// frame's offset. ok is false on any framing damage (short header, bad
// length, short payload, CRC mismatch).
func readFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+8 > int64(len(data)) {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxFrame || off+8+int64(n) > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+8 : off+8+int64(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, off + 8 + int64(n), true
}

// ReadHeaderOnly returns just the header of a log file (the cheap probe
// `elin recover` uses to default its flags before committing to a full
// recovery).
func ReadHeaderOnly(path string) (Header, error) {
	rec, err := Recover(path)
	if err != nil {
		return Header{}, err
	}
	return rec.Header, nil
}

var _ io.Closer = (*Log)(nil)
