package check

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// Monitor is the online t-linearizability monitor seam: anything that can
// watch a growing single-object history event by event and answer with a
// per-window MinT trend, a violation, and its own perf accounting. The
// runtime drivers (live.Run, the networked server) hold a Monitor, never a
// concrete implementation, so exhaustive checking, sampling, sharding and
// record-only are one configuration knob — the spec vocabulary parsed by
// ParseMonitorSpec ("full", "sample:N", "shard:K", "shard:key", "none").
//
// The goroutine discipline is the same for every implementation: Feed,
// Finish, Abort and SetSampleEvery are called from one driving goroutine;
// the read accessors are safe from that goroutine at any time and from
// anywhere after Finish or Abort has returned.
type Monitor interface {
	// Feed appends one event. When the event completes a window whose MinT
	// exceeds the tolerance, the violation is returned (and retained); a
	// pipelined monitor may instead return the violation from a later Feed
	// — the detection lag of checking off the hot path. After a violation
	// the monitor is frozen: further Feeds return the same violation.
	Feed(e history.Event) (*WindowViolation, error)
	// Finish checks the final partial window, drains any in-flight checks,
	// and releases the monitor's resources. The returned violation, if any,
	// covers the tail.
	Finish() (*WindowViolation, error)
	// Abort releases the monitor's resources without measuring the tail
	// window (the crash path: the partial window died with the process).
	// Idempotent, and a no-op after Finish.
	Abort()

	// Events returns the number of events fed so far.
	Events() int
	// Checks returns the number of windows whose MinT search ran.
	Checks() int
	// Samples returns the per-window MinT measurements. The slice is live;
	// callers must not mutate it.
	Samples() []Sample
	// Violation returns the recorded violation, if any.
	Violation() *WindowViolation
	// Verdict classifies the trend of the per-window MinT series.
	Verdict() Verdict

	// SetSampleEvery switches to every-Nth-window sampling (n <= 1 restores
	// exhaustive checking) — the graceful-degradation knob an overloaded
	// server turns through this interface.
	SetSampleEvery(n int)
	// SampleEvery returns the current sampling interval (1 = exhaustive).
	SampleEvery() int
	// SkippedWindows returns how many closed windows skipped their MinT
	// search under sampling.
	SkippedWindows() int
	// Escalations returns how many times a near-violation forced sampling
	// back to exhaustive.
	Escalations() int
	// MaxSampleEvery returns the largest sampling interval the run reached
	// (0 when sampling was never engaged).
	MaxSampleEvery() int
}

// MonitorKind enumerates the monitor implementations the spec vocabulary
// selects.
type MonitorKind int

// MonitorKind values.
const (
	// MonitorFull: the sequential exhaustive Incremental (every window pays
	// a MinT search). The zero value, so an unset spec means full checking.
	MonitorFull MonitorKind = iota
	// MonitorSample: Incremental pre-degraded to every-Nth-window sampling.
	MonitorSample
	// MonitorShardWindow: the pipelined ShardedByWindow — window checks fan
	// out to N workers while recording continues.
	MonitorShardWindow
	// MonitorShardKey: ShardedByKey — one sub-monitor per object key.
	MonitorShardKey
	// MonitorNone: the record-only Null monitor.
	MonitorNone
)

// MonitorSpec is a parsed monitor selection: which implementation, and its
// parameter (sample interval or shard worker count). The zero value selects
// full exhaustive checking.
type MonitorSpec struct {
	Kind MonitorKind
	// N is the sample interval (MonitorSample) or worker count
	// (MonitorShardWindow); 0 elsewhere.
	N int
}

// ParseMonitorSpec parses the monitor spec vocabulary:
//
//	full        exhaustive windowed checking (the default; "" parses as full)
//	sample:N    check every Nth window, escalate back on a near-violation
//	shard:K     pipelined sharded checking on K workers
//	shard:key   one sub-monitor per object key
//	none        record only, no online checking
func ParseMonitorSpec(s string) (MonitorSpec, error) {
	switch s {
	case "", "full":
		return MonitorSpec{Kind: MonitorFull}, nil
	case "none":
		return MonitorSpec{Kind: MonitorNone}, nil
	}
	kind, arg, ok := strings.Cut(s, ":")
	if !ok {
		return MonitorSpec{}, fmt.Errorf("check: unknown monitor spec %q (want full, sample:N, shard:K, shard:key or none)", s)
	}
	switch kind {
	case "sample":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 2 {
			return MonitorSpec{}, fmt.Errorf("check: monitor spec %q: sample interval must be an integer >= 2", s)
		}
		return MonitorSpec{Kind: MonitorSample, N: n}, nil
	case "shard":
		if arg == "key" {
			return MonitorSpec{Kind: MonitorShardKey}, nil
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return MonitorSpec{}, fmt.Errorf("check: monitor spec %q: shard count must be an integer >= 1 (or \"key\")", s)
		}
		return MonitorSpec{Kind: MonitorShardWindow, N: n}, nil
	}
	return MonitorSpec{}, fmt.Errorf("check: unknown monitor spec %q (want full, sample:N, shard:K, shard:key or none)", s)
}

// String returns the canonical spelling ParseMonitorSpec accepts.
func (ms MonitorSpec) String() string {
	switch ms.Kind {
	case MonitorSample:
		return fmt.Sprintf("sample:%d", ms.N)
	case MonitorShardWindow:
		return fmt.Sprintf("shard:%d", ms.N)
	case MonitorShardKey:
		return "shard:key"
	case MonitorNone:
		return "none"
	default:
		return "full"
	}
}

// NewMonitor constructs the monitor a spec selects, watching a history
// against obj under the shared windowing config. This is the constructor
// the runtime uses; NewIncremental remains as the direct form of the
// sequential monitor.
func NewMonitor(ms MonitorSpec, obj spec.Object, cfg IncrementalConfig) (Monitor, error) {
	switch ms.Kind {
	case MonitorFull:
		return NewIncremental(obj, cfg), nil
	case MonitorSample:
		if ms.N < 2 {
			return nil, fmt.Errorf("check: monitor sample interval %d (want >= 2)", ms.N)
		}
		m := NewIncremental(obj, cfg)
		m.SetSampleEvery(ms.N)
		return m, nil
	case MonitorShardWindow:
		return NewShardedByWindow(obj, cfg, ms.N)
	case MonitorShardKey:
		return NewShardedByKey(obj, cfg), nil
	case MonitorNone:
		return NewNull(), nil
	}
	return nil, fmt.Errorf("check: unknown monitor kind %d", ms.Kind)
}

// Null is the record-only monitor: it counts events and does nothing else.
// The "none" spec — the pure-throughput configuration, behind the same
// interface as the checking monitors so drivers need no special case.
type Null struct {
	events int
}

// NewNull returns a record-only monitor.
func NewNull() *Null { return &Null{} }

// Feed implements Monitor (counting only).
func (n *Null) Feed(history.Event) (*WindowViolation, error) {
	n.events++
	return nil, nil
}

// Finish implements Monitor (no-op).
func (n *Null) Finish() (*WindowViolation, error) { return nil, nil }

// Abort implements Monitor (no-op).
func (n *Null) Abort() {}

// Events implements Monitor.
func (n *Null) Events() int { return n.events }

// Checks implements Monitor (always 0).
func (n *Null) Checks() int { return 0 }

// Samples implements Monitor (always nil).
func (n *Null) Samples() []Sample { return nil }

// Violation implements Monitor (always nil).
func (n *Null) Violation() *WindowViolation { return nil }

// Verdict implements Monitor: no samples, so always inconclusive.
func (n *Null) Verdict() Verdict {
	v := Verdict{}
	v.Trend, v.Slope = Classify(nil)
	return v
}

// SetSampleEvery implements Monitor (no-op: nothing is ever checked).
func (n *Null) SetSampleEvery(int) {}

// SampleEvery implements Monitor.
func (n *Null) SampleEvery() int { return 1 }

// SkippedWindows implements Monitor.
func (n *Null) SkippedWindows() int { return 0 }

// Escalations implements Monitor.
func (n *Null) Escalations() int { return 0 }

// MaxSampleEvery implements Monitor.
func (n *Null) MaxSampleEvery() int { return 0 }
