package check

import (
	"fmt"
	"sort"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// fetchIncTLinearizable decides t-linearizability of a fetch&increment
// history in polynomial time. The algorithm is the combinatorial core of
// the proof of Lemma 17 turned into a decision procedure:
//
//   - Operations answered in the suffix after event t ("constrained") must
//     occupy slot v in any t-linearization S, where v is their response
//     (offset by the initial counter value). Two equal responses in the
//     suffix are an immediate violation.
//   - Real-time edges between suffix operations force slot order.
//   - The remaining slots below the top constrained slot ("the set E of the
//     proof") must be filled by operations answered in the prefix (free
//     fillers, the proof's A1) or pending operations (the proof's A4). A
//     pending operation invoked in the suffix may only take a slot greater
//     than the slots of all constrained operations that precede it in real
//     time. Feasibility of that assignment is a greedy matching: gap
//     eligibility is upward closed in the slot, so scanning gaps in
//     ascending order and consuming any eligible filler is exact.
//
// Complexity: O(n^2) for the edge scan on n operations (n log n for the
// matching), versus the exponential generic engine.
func fetchIncTLinearizable(obj spec.Object, h *history.History, t int) (bool, error) {
	initVal, ok := obj.Init.(int64)
	if !ok {
		return false, fmt.Errorf("check: fetch&inc initial state %v is not int64", obj.Init)
	}
	ops := h.Operations()
	for _, op := range ops {
		if op.Op.Method != spec.MethodFetchInc || op.Op.NArgs != 0 {
			return false, fmt.Errorf("check: non-fetchinc operation %s in fetch&inc history", op.Op)
		}
	}

	// Partition: constrained (response in suffix), free (response in
	// prefix), pending. Constrained ops carry fixed slots.
	type cop struct {
		inv, res int
		slot     int64
	}
	var constrained []cop
	freeCount := 0
	var pendingInv []int // invocation indices of pending ops
	slots := make(map[int64]bool)
	for _, op := range ops {
		switch {
		case op.Res >= t:
			slot := op.Resp - initVal
			if slot < 0 {
				return false, nil // response below the initial value is illegal
			}
			if slots[slot] {
				return false, nil // duplicate responses in the suffix
			}
			slots[slot] = true
			constrained = append(constrained, cop{inv: op.Inv, res: op.Res, slot: slot})
		case op.Res >= 0:
			freeCount++
		default:
			pendingInv = append(pendingInv, op.Inv)
		}
	}
	if len(constrained) == 0 {
		// No response constraints and no real-time edges: any ordering of
		// the completed operations with reassigned responses is legal
		// (fetch&inc is total).
		return true, nil
	}

	// Real-time edges among suffix events: for op1 constrained and op2 with
	// invocation in the suffix, res(op1) < inv(op2) forces slot order (for
	// constrained op2) or a slot lower bound (for pending op2).
	sort.Slice(constrained, func(i, j int) bool { return constrained[i].res < constrained[j].res })
	// maxSlotByRes[i] = max slot among constrained[0..i].
	maxSlotByRes := make([]int64, len(constrained))
	running := int64(-1)
	for i, c := range constrained {
		if c.slot > running {
			running = c.slot
		}
		maxSlotByRes[i] = running
	}
	// maxSlotBefore returns the largest slot of a constrained op whose
	// response event precedes event index ev, or -1.
	maxSlotBefore := func(ev int) int64 {
		// Binary search for the last constrained op with res < ev.
		lo, hi := 0, len(constrained)
		for lo < hi {
			mid := lo + (hi-lo)/2
			if constrained[mid].res < ev {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			return -1
		}
		return maxSlotByRes[lo-1]
	}
	for _, c := range constrained {
		if c.inv < t {
			continue
		}
		if maxSlotBefore(c.inv) >= c.slot {
			return false, nil // a real-time predecessor has an equal or larger slot
		}
	}

	// Gap filling: slots 0..maxSlot not taken by constrained ops must be
	// filled. Fillers: free ops (eligible for any gap) and pending ops
	// (eligible for gaps strictly above their real-time lower bound).
	maxSlot := running
	var gaps []int64
	for s := int64(0); s <= maxSlot; s++ {
		if !slots[s] {
			gaps = append(gaps, s)
		}
	}
	if len(gaps) == 0 {
		return true, nil
	}
	thresholds := make([]int64, 0, len(pendingInv))
	for _, inv := range pendingInv {
		if inv < t {
			thresholds = append(thresholds, -1) // no incoming edges: universal
		} else {
			thresholds = append(thresholds, maxSlotBefore(inv))
		}
	}
	sort.Slice(thresholds, func(i, j int) bool { return thresholds[i] < thresholds[j] })

	available := freeCount // free fillers are eligible everywhere
	next := 0
	for _, g := range gaps {
		for next < len(thresholds) && thresholds[next] < g {
			available++
			next++
		}
		if available == 0 {
			return false, nil
		}
		available--
	}
	return true, nil
}

// FetchIncSlots returns, for a t-linearizable fetch&inc history, the slot
// (position in the t-linearization) that each suffix-constrained operation
// must occupy, keyed by operation index in h.Operations(). It exposes the
// "slot exhaustion" phenomenon behind the Section 3.2 counterexample: as
// the constrained operations fill an initial segment of the naturals, any
// prefix-answered operation is forced to ever larger slots.
func FetchIncSlots(obj spec.Object, h *history.History, t int) (map[int]int64, error) {
	initVal, ok := obj.Init.(int64)
	if !ok {
		return nil, fmt.Errorf("check: fetch&inc initial state %v is not int64", obj.Init)
	}
	out := make(map[int]int64)
	for i, op := range h.Operations() {
		if op.Res >= t {
			out[i] = op.Resp - initVal
		}
	}
	return out, nil
}
