// Package check implements the decision procedures for the consistency
// conditions of the paper: legality of sequential histories,
// linearizability, t-linearizability (Definition 2), weak consistency
// (Definition 1), and the eventual-linearizability monitor that observes
// MinT across growing prefixes (the finite-data proxy for Definitions 3/4).
//
// The generic engine is a Wing&Gong-style depth-first search with
// memoization, generalized so that the first t events of the history impose
// neither real-time nor response constraints. Checking is exponential in
// the number of overlapping operations in the worst case; all entry points
// take a node budget and return ErrBudget when it is exhausted. For
// fetch&increment histories a polynomial-time checker derived from the
// combinatorial argument in the proof of Lemma 17 is provided (see fik.go)
// and is used automatically where applicable.
package check

import (
	"errors"
	"fmt"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// ErrBudget is returned when a search exceeds its node budget.
var ErrBudget = errors.New("check: search budget exhausted")

// ErrTooLarge is returned when a history has more operations on a single
// object than the engine supports (63).
var ErrTooLarge = errors.New("check: too many operations on one object (max 63)")

// DefaultBudget is the node budget used when Options.Budget is zero.
const DefaultBudget = 4 << 20

// MaxOpsPerObject is the largest number of operations on a single object the
// generic engine accepts (operation sets are tracked in a 64-bit mask).
const MaxOpsPerObject = 63

// Options tunes the search.
type Options struct {
	// Budget caps the number of DFS node expansions (0 means
	// DefaultBudget). When exceeded, checks return ErrBudget.
	Budget int64
	// NoFastPath disables type-specialized checkers; used by
	// cross-validation tests.
	NoFastPath bool
	// NoMemo disables the failure-memoization table of the generic
	// engines; used by the ablation benchmarks to quantify what the
	// memoization buys.
	NoMemo bool
}

func (o Options) budget() int64 {
	if o.Budget <= 0 {
		return DefaultBudget
	}
	return o.Budget
}

// Legal reports whether a sequential history is legal with respect to the
// given object specifications (one entry per object name appearing in the
// history): for each object, the operations in order must follow some path
// through the type's transition relation from the initial state.
func Legal(objs map[string]spec.Object, h *history.History) (bool, error) {
	if !h.Sequential() {
		return false, fmt.Errorf("check: history is not sequential")
	}
	for _, name := range h.Objects() {
		obj, ok := objs[name]
		if !ok {
			return false, fmt.Errorf("check: no specification for object %q", name)
		}
		legal, err := legalOneObject(obj, h.ByObject(name))
		if err != nil {
			return false, err
		}
		if !legal {
			return false, nil
		}
	}
	return true, nil
}

// legalOneObject checks legality of a single-object sequential history. For
// nondeterministic types it searches over transition choices.
func legalOneObject(obj spec.Object, h *history.History) (bool, error) {
	ops := h.Operations()
	// A trailing pending invocation imposes no constraint on legality.
	seq := make([]history.Operation, 0, len(ops))
	for _, op := range ops {
		if !op.Pending() {
			seq = append(seq, op)
		}
	}
	states := []spec.State{obj.Init}
	for i, op := range seq {
		next := make(map[spec.State]bool)
		for _, s := range states {
			for _, out := range obj.Type.Step(s, op.Op) {
				if out.Resp == op.Resp {
					next[out.Next] = true
				}
			}
		}
		if len(next) == 0 {
			return false, nil
		}
		states = states[:0]
		for s := range next {
			states = append(states, s)
		}
		_ = i
	}
	return true, nil
}
