package check

import (
	"fmt"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// consensusTLinearizable decides t-linearizability of a consensus history
// in polynomial time. In any legal sequential consensus history every
// operation returns the first operation's argument, so a t-linearization
// exists iff:
//
//   - every operation answered in the suffix (after event t) returns one
//     common value v*, and
//   - some operation with argument v* can be linearized first: it has no
//     real-time predecessor among suffix-answered operations. Prefix
//     responses are reassigned freely and the remaining operations follow
//     in any order extending the (acyclic) real-time order.
//
// If no operation is answered in the suffix, any invoked operation may lead
// and the history is trivially t-linearizable (consensus is total).
func consensusTLinearizable(obj spec.Object, h *history.History, t int) (bool, error) {
	if obj.Init != spec.NoValue {
		// A pre-decided consensus object pins v* to the decided value.
		return consensusPreDecided(obj, h, t)
	}
	ops := h.Operations()
	for _, op := range ops {
		if op.Op.Method != spec.MethodPropose || op.Op.NArgs != 1 || op.Op.Args[0] < 0 {
			return false, fmt.Errorf("check: non-propose operation %s in consensus history", op.Op)
		}
	}
	vstar := spec.NoValue
	anyConstrained := false
	for _, op := range ops {
		if op.Res < t {
			continue
		}
		if !anyConstrained {
			anyConstrained = true
			vstar = op.Resp
			continue
		}
		if op.Resp != vstar {
			return false, nil // two suffix answers disagree
		}
	}
	if !anyConstrained {
		return true, nil
	}
	if vstar < 0 {
		return false, nil // ⊥ or negative is never a legal consensus response
	}
	// Find a leader: an operation proposing v* with no suffix real-time
	// predecessor (pred requires res_i >= t, inv_j >= t, res_i < inv_j; an
	// op invoked in the prefix has no predecessors by definition).
	firstSuffixRes := -1
	for _, op := range ops {
		if op.Res >= t && (firstSuffixRes < 0 || op.Res < firstSuffixRes) {
			firstSuffixRes = op.Res
		}
	}
	for _, op := range ops {
		if op.Op.Args[0] != vstar {
			continue
		}
		if op.Inv < t || op.Inv < firstSuffixRes {
			// No suffix-answered operation completes before op's
			// invocation, so op can be linearized first.
			return true, nil
		}
	}
	return false, nil
}

// consensusPreDecided handles objects whose initial state is already a
// decided value d: every operation must return d, and real-time order is
// irrelevant beyond that (all responses identical).
func consensusPreDecided(obj spec.Object, h *history.History, t int) (bool, error) {
	d, ok := obj.Init.(int64)
	if !ok {
		return false, fmt.Errorf("check: consensus initial state %v is not int64", obj.Init)
	}
	for _, op := range h.Operations() {
		if op.Res >= t && op.Resp != d {
			return false, nil
		}
	}
	return true, nil
}
