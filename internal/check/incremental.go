package check

import (
	"fmt"
	"sort"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// IncrementalConfig tunes the windowed online monitor.
type IncrementalConfig struct {
	// Stride is the number of events between checks; each check closes one
	// window (default 256). Smaller strides catch violations sooner and keep
	// the per-check search small; the generic engine caps a window at
	// MaxOpsPerObject operations, so non-fetchinc/consensus types need
	// Stride well below 2*MaxOpsPerObject.
	Stride int
	// MaxT is the violation threshold: a window whose MinT exceeds it stops
	// the monitor with a WindowViolation. 0 (the default) demands every
	// window be linearizable on its own — the right setting for objects
	// claiming linearizability. Eventually linearizable objects are run
	// with a positive tolerance, or with a negative MaxT (trend watching
	// only, no violation stop — same as NoViolation).
	MaxT int
	// NoViolation disables the MaxT cut-off entirely (equivalent to a
	// negative MaxT but keeps the zero value of MaxT meaning "strict").
	NoViolation bool
	// Opts configures the underlying MinT searches.
	Opts Options
}

func (c IncrementalConfig) stride() int {
	if c.Stride <= 0 {
		return 256
	}
	return c.Stride
}

// WindowViolation is an online monitor stop: a window whose MinT exceeded
// the configured tolerance. The window is standalone — its object carries
// the rebased initial state, so it can be re-checked, shrunk and replayed
// without the rest of the run.
type WindowViolation struct {
	// Start and End are the global event indexes the window covers
	// ([Start, End) in the full merged history).
	Start, End int
	// Window is the offending window as a standalone history (cloned; safe
	// to keep). Operations that were already open when the window started
	// appear with their invocations moved to the window start, which only
	// weakens real-time constraints — a violation is never manufactured by
	// the windowing.
	Window *history.History
	// Object is the specification the window was checked against, with the
	// initial state rebased past the committed prefix.
	Object spec.Object
	// MinT is the window's measured MinT, or -1 if the window is not
	// t-linearizable for any t (partial types only).
	MinT int
	// MaxT echoes the tolerance the window exceeded.
	MaxT int
}

// String implements fmt.Stringer.
func (v *WindowViolation) String() string {
	return fmt.Sprintf("window [%d,%d): MinT %d exceeds tolerance %d", v.Start, v.End, v.MinT, v.MaxT)
}

// Incremental is the online t-linearizability monitor: a growing
// single-object history is fed event by event and checked in windows, so a
// run of millions of operations pays a bounded (per-window) search instead
// of one post-hoc check over the whole history — post-hoc linearizability
// checking is NP-hard in the history length, windowed monitoring is the
// standard way long-lived objects stay checkable online.
//
// Every Stride events the monitor computes the MinT of the current window
// as a standalone history and then advances the window: operations
// completed inside the window are folded into the object's initial state
// (applied in commit order — exact for order-insensitive types like
// fetch&increment, where any serialization of n increments yields the same
// state; for other types the fold trusts the recorded commit order, which
// is precisely the serialization claim under test). Operations still open
// at the cut stay in the next window with their invocations moved to the
// window start — a sound weakening (it only removes real-time edges), so
// the monitor never reports a violation a full post-hoc check would not.
// The converse does not hold: a violation whose conflicting operations
// never share a window is missed, the usual windowed-monitoring trade-off.
//
// The per-window MinT values form a Sample series (one sample per window,
// at the global event count where the window closed): Verdict classifies
// their trend, which is the live analog of TrackMinT — stabilized windows
// are the Definition 4 signature, persistently growing window MinT the
// Corollary 19 one.
type Incremental struct {
	cfg IncrementalConfig

	// obj is the specification with Init rebased past the committed prefix.
	obj spec.Object
	det spec.DetStepper // non-nil fast path for the rebase fold

	// win is the current window as a standalone history.
	win *history.History
	// start is the global event index of the window's first event.
	start int
	// events counts all events fed so far.
	events int

	samples   []Sample
	violation *WindowViolation
	// checks counts windows closed (violating or not).
	checks int

	// Sampling fallback: with sampleEvery > 1 only every Nth closed window
	// pays the MinT search; skipped windows still fold their completed
	// operations into the rebased state (the fold is cheap and required for
	// later windows to check against the right initial state) but record no
	// sample. skipLeft is the countdown to the next measured window: each
	// measured window re-arms it to sampleEvery-1, and SetSampleEvery resets
	// it, so re-engaging sampling mid-run always skips exactly n-1 windows
	// before the next measurement regardless of how many windows have closed
	// before (a winCount modulus would make the cadence phase-dependent).
	// All plain ints: they are touched only from the single goroutine
	// driving Feed.
	sampleEvery    int // 0 or 1 = exhaustive
	skipLeft       int // windows to skip before the next measured one
	winCount       int // windows closed, measured or skipped
	skipped        int // windows whose MinT search was skipped
	escalations    int // times a near-violation forced sampling back to 1
	maxSampleEvery int // high-water mark of sampleEvery over the run
}

// NewIncremental returns the sequential monitor for a single-object history
// against obj.
//
// Deprecated: construct monitors through NewMonitor with a MonitorSpec —
// it covers this monitor (kinds MonitorFull and MonitorSample) alongside
// the sharded and record-only implementations behind the Monitor interface.
// NewIncremental stays for callers that need the concrete type.
func NewIncremental(obj spec.Object, cfg IncrementalConfig) *Incremental {
	m := &Incremental{
		cfg: cfg,
		obj: obj,
		win: history.New(),
	}
	m.det, _ = obj.Type.(spec.DetStepper)
	return m
}

// Events returns the number of events fed so far.
func (m *Incremental) Events() int { return m.events }

// Checks returns the number of windows checked so far.
func (m *Incremental) Checks() int { return m.checks }

// Samples returns the per-window MinT measurements (one per closed window,
// keyed by the global event count at the close). The slice is live; callers
// must not mutate it.
func (m *Incremental) Samples() []Sample { return m.samples }

// Violation returns the recorded violation, if any.
func (m *Incremental) Violation() *WindowViolation { return m.violation }

// SetSampleEvery switches the monitor to every-Nth-window sampling (n <= 1
// restores exhaustive checking). The graceful-degradation knob: under
// overload a server trades per-window MinT coverage for line rate, and the
// monitor escalates itself back to exhaustive on a near-violation. Safe to
// call between Feeds only (same goroutine discipline as Feed).
func (m *Incremental) SetSampleEvery(n int) {
	if n < 1 {
		n = 1
	}
	m.sampleEvery = n
	// Re-arm the countdown from scratch: n-1 skips before the next measured
	// window, or none when returning to exhaustive checking. Without this a
	// stale countdown from an earlier sampling phase would bleed into the
	// new cadence.
	m.skipLeft = n - 1
	if n > m.maxSampleEvery {
		m.maxSampleEvery = n
	}
}

// SampleEvery returns the current sampling interval (1 = exhaustive).
func (m *Incremental) SampleEvery() int {
	if m.sampleEvery < 1 {
		return 1
	}
	return m.sampleEvery
}

// SkippedWindows returns how many closed windows skipped their MinT search
// under sampling.
func (m *Incremental) SkippedWindows() int { return m.skipped }

// Escalations returns how many times a near-violation (measured MinT past
// half the tolerance) forced sampling back to exhaustive.
func (m *Incremental) Escalations() int { return m.escalations }

// MaxSampleEvery returns the largest sampling interval the run reached
// (0 when sampling was never engaged).
func (m *Incremental) MaxSampleEvery() int { return m.maxSampleEvery }

// Verdict classifies the trend of the per-window MinT series.
func (m *Incremental) Verdict() Verdict {
	v := Verdict{Samples: m.samples}
	if len(m.samples) > 0 {
		v.FinalMinT = m.samples[len(m.samples)-1].MinT
	}
	v.Trend, v.Slope = Classify(m.samples)
	return v
}

// Feed appends one event. When the event closes a window the window is
// checked; a tolerance breach returns the violation (also retained for
// Violation) and freezes the monitor — further Feeds return the same
// violation without checking.
func (m *Incremental) Feed(e history.Event) (*WindowViolation, error) {
	if m.violation != nil {
		return m.violation, nil
	}
	if err := m.win.Append(e); err != nil {
		return nil, fmt.Errorf("check: incremental feed: %w", err)
	}
	m.events++
	if m.win.Len() < m.cfg.stride() {
		return nil, nil
	}
	return m.closeWindow(false)
}

// Finish checks the final partial window (if it has any events). Call it
// after the last Feed; the returned violation, if any, covers the tail.
func (m *Incremental) Finish() (*WindowViolation, error) {
	if m.violation != nil || m.win.Len() == 0 {
		return m.violation, nil
	}
	return m.closeWindow(true)
}

// Abort implements Monitor. The sequential monitor holds no resources, so
// aborting just drops the unmeasured tail window.
func (m *Incremental) Abort() {}

// closeWindow measures the current window, records the sample, raises a
// violation if tolerated MinT is exceeded, and otherwise advances the cut.
// Under sampling, unsampled windows skip the MinT search but still advance
// the cut; force (Finish's tail window) always measures, so a run never
// ends on an unchecked window.
func (m *Incremental) closeWindow(force bool) (*WindowViolation, error) {
	m.winCount++
	if !force && m.skipLeft > 0 {
		m.skipLeft--
		m.skipped++
		return nil, m.advanceCut()
	}
	t, ok, err := MinT(m.obj, m.win, m.cfg.Opts)
	if err != nil {
		return nil, fmt.Errorf("check: incremental window [%d,%d): %w", m.start, m.events, err)
	}
	m.checks++
	if !ok {
		t = -1
	}
	m.samples = append(m.samples, Sample{Events: m.events, MinT: t})
	if !m.cfg.NoViolation && m.cfg.MaxT >= 0 && (t < 0 || t > m.cfg.MaxT) {
		m.violation = &WindowViolation{
			Start:  m.start,
			End:    m.events,
			Window: m.win.Clone(),
			Object: m.obj,
			MinT:   t,
			MaxT:   m.cfg.MaxT,
		}
		return m.violation, nil
	}
	// Near-violation escalation: a measured MinT past half the tolerance
	// ends sampling — the trend is drifting toward the threshold, so every
	// window matters again. Observe-only runs (NoViolation or negative
	// MaxT) never escalate: positive t is the normal EL signature there,
	// not an approaching failure.
	if m.sampleEvery > 1 && !m.cfg.NoViolation && m.cfg.MaxT > 0 && 2*t > m.cfg.MaxT {
		m.sampleEvery = 1
		m.skipLeft = 0
		m.escalations++
	} else if m.sampleEvery > 1 {
		m.skipLeft = m.sampleEvery - 1
	}
	return nil, m.advanceCut()
}

// advanceCut folds the window's completed operations into the rebased
// initial state (in commit order) and starts the next window with the
// still-open operations' invocations.
func (m *Incremental) advanceCut() error {
	obj, next, err := rebaseFold(m.obj, m.det, m.win)
	if err != nil {
		return err
	}
	m.obj = obj
	m.start = m.events
	m.win = next
	return nil
}

// rebaseFold is the shared window handoff: it folds win's completed
// operations into obj's initial state (in commit order) and returns the
// rebased object together with the next window, primed with the still-open
// operations' invocations. The sequential monitor uses it to advance its
// cut in place; the window-sharded monitor uses it at dispatch time so the
// closed window can be handed to a worker while recording continues against
// the rebased state.
func rebaseFold(obj spec.Object, det spec.DetStepper, win *history.History) (spec.Object, *history.History, error) {
	state := obj.Init
	ops := win.Operations()
	var open []history.Operation
	byRes := make([]history.Operation, 0, len(ops))
	for _, op := range ops {
		if op.Pending() {
			open = append(open, op)
		} else {
			byRes = append(byRes, op)
		}
	}
	// Fold in response-event order: in the live runtime response events are
	// placed at their commit tickets, so this is the commit order.
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].Res < byRes[j].Res })
	for _, op := range byRes {
		next, applied := stepRebase(obj, det, state, op.Op, op.Resp)
		if !applied {
			return obj, nil, fmt.Errorf("check: incremental rebase: %s inapplicable in state %v", op.Op, state)
		}
		state = next
	}
	rebased := spec.Object{Type: obj.Type, Init: state}
	next := history.New()
	for _, op := range open {
		if err := next.Invoke(op.Proc, op.Obj, op.Op); err != nil {
			return obj, nil, fmt.Errorf("check: incremental rebase: %w", err)
		}
	}
	return rebased, next, nil
}

// stepRebase advances state by op. Deterministic types ignore resp; for a
// nondeterministic type the outcome matching the recorded response is
// selected (the branch the implementation claims to have taken), falling
// back to the first applicable outcome when none matches.
func stepRebase(obj spec.Object, det spec.DetStepper, state spec.State, op spec.Op, resp int64) (spec.State, bool) {
	if det != nil {
		out, ok := det.StepDet(state, op)
		return out.Next, ok
	}
	outs := obj.Type.Step(state, op)
	if len(outs) == 0 {
		return state, false
	}
	for _, out := range outs {
		if out.Resp == resp {
			return out.Next, true
		}
	}
	return outs[0].Next, true
}
