package check

import (
	"fmt"
	"strings"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// LinStep is one element of a witness t-linearization S: which operation
// of the history it is, and the response it takes in S (which may differ
// from its response in the history when that response fell in the first t
// events, and is freshly assigned for pending operations).
type LinStep struct {
	// OpIndex indexes into h.Operations().
	OpIndex int
	// Proc is the invoking process.
	Proc int
	// Op is the operation.
	Op spec.Op
	// Resp is the operation's response in S.
	Resp int64
	// RespDiffers reports that Resp differs from the history's response
	// (prefix-answered or pending operation).
	RespDiffers bool
}

// FormatLinearization renders a witness sequence human-readably.
func FormatLinearization(steps []LinStep) string {
	var b strings.Builder
	for i, s := range steps {
		mark := ""
		if s.RespDiffers {
			mark = " (reassigned)"
		}
		fmt.Fprintf(&b, "%3d. p%d %s -> %d%s\n", i+1, s.Proc, s.Op, s.Resp, mark)
	}
	return b.String()
}

// Linearization searches for a witness t-linearization of the
// single-object history h and returns it as an ordered sequence. It always
// uses the generic engine (no fast paths), so it is subject to the
// 63-operation cap; use TLinearizable for decision-only queries on long
// fetch&increment histories.
func Linearization(obj spec.Object, h *history.History, t int, opts Options) ([]LinStep, bool, error) {
	if err := oneObject(h); err != nil {
		return nil, false, err
	}
	if t < 0 {
		t = 0
	}
	ops := h.Operations()
	if len(ops) > MaxOpsPerObject {
		return nil, false, ErrTooLarge
	}
	pr := newTLinProblem(obj, ops, t, opts)
	var trace []LinStep
	ok, err := pr.dfsTrace(obj.Init, 0, &trace)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return trace, true, nil
}

// dfsTrace mirrors dfs but records the successful order.
func (pr *tlinProblem) dfsTrace(state spec.State, chosen uint64, trace *[]LinStep) (bool, error) {
	if chosen&pr.completed == pr.completed {
		return true, nil
	}
	pr.budget--
	if pr.budget < 0 {
		return false, ErrBudget
	}
	key := memoKey{mask: chosen, state: state}
	if _, seen := pr.memo[key]; seen {
		return false, nil
	}
	for i := range pr.ops {
		bit := uint64(1) << uint(i)
		if chosen&bit != 0 || pr.pred[i]&^chosen != 0 {
			continue
		}
		for _, out := range pr.typ.Step(state, pr.ops[i].Op) {
			if pr.constrained&bit != 0 && out.Resp != pr.ops[i].Resp {
				continue
			}
			op := pr.ops[i]
			*trace = append(*trace, LinStep{
				OpIndex:     i,
				Proc:        op.Proc,
				Op:          op.Op,
				Resp:        out.Resp,
				RespDiffers: op.Pending() || out.Resp != op.Resp,
			})
			ok, err := pr.dfsTrace(out.Next, chosen|bit, trace)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			*trace = (*trace)[:len(*trace)-1]
		}
	}
	pr.memo[key] = struct{}{}
	return false, nil
}

// ValidateLinearization checks that a claimed witness really is a
// t-linearization of h: legal, complete, response-matching on the suffix,
// and real-time respecting. It is the independent auditor used by tests.
func ValidateLinearization(obj spec.Object, h *history.History, t int, steps []LinStep) error {
	ops := h.Operations()
	pred, constrained, completed := opConstraints(ops, t)

	seen := make(map[int]bool, len(steps))
	var chosen uint64
	state := obj.Init
	for k, s := range steps {
		if s.OpIndex < 0 || s.OpIndex >= len(ops) {
			return fmt.Errorf("step %d: op index %d out of range", k, s.OpIndex)
		}
		if seen[s.OpIndex] {
			return fmt.Errorf("step %d: op %d appears twice", k, s.OpIndex)
		}
		seen[s.OpIndex] = true
		bit := uint64(1) << uint(s.OpIndex)
		if pred[s.OpIndex]&^chosen != 0 {
			return fmt.Errorf("step %d: op %d linearized before a real-time predecessor", k, s.OpIndex)
		}
		if constrained&bit != 0 && s.Resp != ops[s.OpIndex].Resp {
			return fmt.Errorf("step %d: op %d must return %d, witness has %d",
				k, s.OpIndex, ops[s.OpIndex].Resp, s.Resp)
		}
		legal := false
		for _, out := range obj.Type.Step(state, ops[s.OpIndex].Op) {
			if out.Resp == s.Resp {
				state = out.Next
				legal = true
				break
			}
		}
		if !legal {
			return fmt.Errorf("step %d: response %d illegal for %s in state %v",
				k, s.Resp, ops[s.OpIndex].Op, state)
		}
		chosen |= bit
	}
	if chosen&completed != completed {
		return fmt.Errorf("witness omits completed operations")
	}
	return nil
}
