package check

import (
	"errors"
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestSequentialWitnessFetchIncFastPath(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	must := []spec.Op{fi, fi}
	opt := []spec.Op{fi, fi, fi}
	cases := []struct {
		resp int64
		want bool
	}{
		{1, false}, // below the mandatory count
		{2, true},  // exactly the mandatory predecessors
		{4, true},  // two optional ops included
		{5, true},  // all optional ops included
		{6, false}, // more predecessors than exist
	}
	for _, tc := range cases {
		got, err := SequentialWitness(obj, must, opt, fi, tc.resp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("resp %d: witness = %v, want %v", tc.resp, got, tc.want)
		}
	}
	// Foreign operations disqualify the fast path's premise.
	ok, err := SequentialWitness(obj, []spec.Op{rd}, nil, fi, 0, Options{})
	if err != nil || ok {
		t.Errorf("foreign must op: %v %v", ok, err)
	}
	ok, err = SequentialWitness(obj, nil, nil, rd, 0, Options{})
	if err != nil || ok {
		t.Errorf("foreign final op: %v %v", ok, err)
	}
}

func TestSequentialWitnessGenericRegister(t *testing.T) {
	// Force the generic search (registers have no SequentialWitness fast
	// path anyway).
	obj := spec.NewObject(spec.Register{})
	// must: my write(5); opt: someone's write(9).
	must := []spec.Op{wr(5)}
	opt := []spec.Op{wr(9)}
	read := rd

	// Reading 5 works: [write(9)?, write(5), read->5] or [write(5), read].
	ok, err := SequentialWitness(obj, must, opt, read, 5, Options{})
	if err != nil || !ok {
		t.Fatalf("read->5: %v %v", ok, err)
	}
	// Reading 9 works: [write(5), write(9), read->9].
	ok, err = SequentialWitness(obj, must, opt, read, 9, Options{})
	if err != nil || !ok {
		t.Fatalf("read->9: %v %v", ok, err)
	}
	// Reading 0 (initial) fails: my write(5) must precede the read.
	ok, err = SequentialWitness(obj, must, opt, read, 0, Options{})
	if err != nil || ok {
		t.Fatalf("read->0: %v %v", ok, err)
	}
	// With no mandatory writes, the initial value is readable.
	ok, err = SequentialWitness(obj, nil, opt, read, 0, Options{})
	if err != nil || !ok {
		t.Fatalf("fresh read->0: %v %v", ok, err)
	}
}

func TestSequentialWitnessGenericQueue(t *testing.T) {
	obj := spec.NewObject(spec.Queue{})
	enq := func(v int64) spec.Op { return spec.MakeOp1(spec.MethodEnq, v) }
	deq := spec.MakeOp(spec.MethodDeq)

	// My enqueues 1,2 must appear; a dequeue can return 1 (FIFO head).
	ok, err := SequentialWitness(obj, []spec.Op{enq(1), enq(2)}, nil, deq, 1, Options{})
	if err != nil || !ok {
		t.Fatalf("deq->1: %v %v", ok, err)
	}
	// A dequeue returning 2 also works: order the enqueues 2 then 1.
	ok, err = SequentialWitness(obj, []spec.Op{enq(1), enq(2)}, nil, deq, 2, Options{})
	if err != nil || !ok {
		t.Fatalf("deq->2: %v %v", ok, err)
	}
	// A dequeue returning 7 is out of left field.
	ok, err = SequentialWitness(obj, []spec.Op{enq(1)}, []spec.Op{enq(2)}, deq, 7, Options{})
	if err != nil || ok {
		t.Fatalf("deq->7: %v %v", ok, err)
	}
	// Empty dequeue fails when a mandatory enqueue exists...
	ok, err = SequentialWitness(obj, []spec.Op{enq(1)}, nil, deq, spec.EmptyDeq, Options{})
	if err != nil || ok {
		t.Fatalf("empty deq with mandatory enq: %v %v", ok, err)
	}
	// ... but succeeds when the enqueue is optional.
	ok, err = SequentialWitness(obj, nil, []spec.Op{enq(1)}, deq, spec.EmptyDeq, Options{})
	if err != nil || !ok {
		t.Fatalf("empty deq with optional enq: %v %v", ok, err)
	}
}

func TestSequentialWitnessLimits(t *testing.T) {
	obj := spec.NewObject(spec.Register{})
	big := make([]spec.Op, MaxOpsPerObject+1)
	for i := range big {
		big[i] = wr(int64(i))
	}
	_, err := SequentialWitness(obj, big, nil, rd, 0, Options{})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	_, err = SequentialWitness(obj, []spec.Op{wr(1), wr(2), wr(3)}, []spec.Op{wr(4)}, rd, 9, Options{Budget: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
