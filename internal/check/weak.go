package check

import (
	"fmt"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// WeaklyConsistent reports whether every completed operation of h satisfies
// Definition 1: for each operation op with a response, there is a legal
// sequential history S that (i) contains only operations invoked in h
// before op terminates, (ii) contains all operations by op's process that
// precede op, and (iii) ends with op returning the same response as in h.
//
// Weak consistency is a local property (Lemma 8), so the check partitions h
// by object.
func WeaklyConsistent(objs map[string]spec.Object, h *history.History, opts Options) (bool, error) {
	ok, _, err := WeaklyConsistentExplain(objs, h, opts)
	return ok, err
}

// WeaklyConsistentExplain is WeaklyConsistent but also reports the first
// violating operation (as rendered by history.Operation.String), if any.
func WeaklyConsistentExplain(objs map[string]spec.Object, h *history.History, opts Options) (bool, string, error) {
	for _, name := range h.Objects() {
		obj, ok := objs[name]
		if !ok {
			return false, "", fmt.Errorf("check: no specification for object %q", name)
		}
		proj := h.ByObject(name)
		ops := proj.Operations()
		for k, op := range ops {
			if op.Pending() {
				continue
			}
			ok, err := weakWitness(obj, ops, k, op.Resp, op.Res, opts)
			if err != nil {
				return false, op.String(), fmt.Errorf("object %q op %s: %w", name, op, err)
			}
			if !ok {
				return false, op.String(), nil
			}
		}
	}
	return true, "", nil
}

// WeakResponses returns the set of responses r such that, were process
// proc's pending operation on the (single-object) history h to return r
// now, the operation would satisfy Definition 1. This is the candidate set
// an eventually linearizable object may answer from before stabilizing:
// anything else would be "out of left field". The history must contain a
// pending operation by proc.
func WeakResponses(obj spec.Object, h *history.History, proc int, opts Options) ([]int64, error) {
	if err := oneObject(h); err != nil {
		return nil, err
	}
	ops := h.Operations()
	k := -1
	for i, op := range ops {
		if op.Proc == proc && op.Pending() {
			k = i
			break
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("check: process p%d has no pending operation", proc)
	}
	// The hypothetical response event would land at index h.Len(), so every
	// operation already invoked is a candidate member of S.
	if !opts.NoFastPath {
		switch obj.Type.(type) {
		case spec.Register:
			return weakRegisterResponses(obj, ops, k, h.Len())
		case spec.FetchInc:
			return weakFetchIncResponses(obj, ops, k, h.Len())
		}
	}
	return weakResponseSet(obj, ops, k, h.Len(), opts)
}

// weakRegisterResponses computes the Definition 1 candidate set for a
// register in linear time: a write may only be acked; a read may return any
// value written by an operation invoked before the response position, or
// the initial value provided the reader has no earlier writes of its own.
func weakRegisterResponses(obj spec.Object, ops []history.Operation, k, respIdx int) ([]int64, error) {
	init, ok := obj.Init.(int64)
	if !ok {
		return nil, fmt.Errorf("check: register initial state %v is not int64", obj.Init)
	}
	op := ops[k]
	switch op.Op.Method {
	case spec.MethodWrite:
		return []int64{0}, nil
	case spec.MethodRead:
		seen := make(map[int64]bool)
		var out []int64
		selfWrote := false
		for i, other := range ops {
			if i == k || other.Op.Method != spec.MethodWrite || other.Inv >= respIdx {
				continue
			}
			if v := other.Op.Args[0]; !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
			if other.Proc == op.Proc && other.Inv < op.Inv {
				selfWrote = true
			}
		}
		if !selfWrote && !seen[init] {
			out = append(out, init)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("check: unexpected register method %q", op.Op.Method)
	}
}

// weakFetchIncResponses computes the Definition 1 candidate set for a
// fetch&increment in linear time: the contiguous range
// [init+m, init+m+c] where m counts mandatory same-process predecessors and
// c counts optional candidates.
func weakFetchIncResponses(obj spec.Object, ops []history.Operation, k, respIdx int) ([]int64, error) {
	init, ok := obj.Init.(int64)
	if !ok {
		return nil, fmt.Errorf("check: fetch&inc initial state %v is not int64", obj.Init)
	}
	must, opt := weakCandidates(ops, k, respIdx)
	out := make([]int64, 0, len(opt)+1)
	for r := init + int64(len(must)); r <= init+int64(len(must))+int64(len(opt)); r++ {
		out = append(out, r)
	}
	return out, nil
}

// weakWitness decides Definition 1 for operation index k with response resp,
// whose response event index is respIdx. Fast paths exist for registers and
// fetch&increment; the generic path is a budgeted DFS.
func weakWitness(obj spec.Object, ops []history.Operation, k int, resp int64, respIdx int, opts Options) (bool, error) {
	if !opts.NoFastPath {
		switch t := obj.Type.(type) {
		case spec.Register:
			return weakRegister(obj, ops, k, resp, respIdx)
		case spec.FetchInc:
			return weakFetchInc(obj, ops, k, resp, respIdx)
		default:
			_ = t
		}
	}
	set, err := weakResponseSet(obj, ops, k, respIdx, opts)
	if err != nil {
		return false, err
	}
	for _, r := range set {
		if r == resp {
			return true, nil
		}
	}
	return false, nil
}

// weakRegister: a read may return any value written by an operation invoked
// before the read's response, or the initial value provided the reading
// process has no earlier writes (its own writes must appear in S before the
// read). A write is weakly consistent iff its response is the ack 0.
func weakRegister(obj spec.Object, ops []history.Operation, k int, resp int64, respIdx int) (bool, error) {
	init, ok := obj.Init.(int64)
	if !ok {
		return false, fmt.Errorf("check: register initial state %v is not int64", obj.Init)
	}
	op := ops[k]
	switch op.Op.Method {
	case spec.MethodWrite:
		return resp == 0, nil
	case spec.MethodRead:
		selfWrote := false
		for i, other := range ops {
			if i == k || other.Op.Method != spec.MethodWrite {
				continue
			}
			if other.Inv >= respIdx {
				continue // invoked after the read terminated: not in S
			}
			if other.Op.NArgs == 1 && other.Op.Args[0] == resp {
				return true, nil
			}
			if other.Proc == op.Proc && other.Inv < op.Inv {
				selfWrote = true
			}
		}
		return resp == init && !selfWrote, nil
	default:
		return false, fmt.Errorf("check: unexpected register method %q", op.Op.Method)
	}
}

// weakFetchInc: with m mandatory same-process predecessors and c optional
// candidates, a fetch&inc may return any r with m <= r - init <= m + c.
func weakFetchInc(obj spec.Object, ops []history.Operation, k int, resp int64, respIdx int) (bool, error) {
	init, ok := obj.Init.(int64)
	if !ok {
		return false, fmt.Errorf("check: fetch&inc initial state %v is not int64", obj.Init)
	}
	must, opt := weakCandidates(ops, k, respIdx)
	m, c := int64(len(must)), int64(len(opt))
	return resp-init >= m && resp-init <= m+c, nil
}

// weakCandidates splits the operations other than k into the mandatory set
// (same process, preceding k) and the optional set (anything else invoked
// before respIdx).
func weakCandidates(ops []history.Operation, k, respIdx int) (must, opt []int) {
	op := ops[k]
	for i, other := range ops {
		if i == k {
			continue
		}
		if other.Proc == op.Proc && other.Inv < op.Inv {
			must = append(must, i)
			continue
		}
		if other.Inv < respIdx {
			opt = append(opt, i)
		}
	}
	return must, opt
}

// weakResponseSet enumerates every response the operation at index k could
// legally return at response position respIdx under Definition 1, by
// searching arrangements of mandatory and optional candidate operations.
func weakResponseSet(obj spec.Object, ops []history.Operation, k, respIdx int, opts Options) ([]int64, error) {
	must, opt := weakCandidates(ops, k, respIdx)
	if len(must)+len(opt) > MaxOpsPerObject {
		return nil, ErrTooLarge
	}
	// Index candidate ops with bits: must occupy bits [0,len(must)),
	// optional the rest.
	cand := make([]history.Operation, 0, len(must)+len(opt))
	for _, i := range must {
		cand = append(cand, ops[i])
	}
	for _, i := range opt {
		cand = append(cand, ops[i])
	}
	mustMask := uint64(1)<<uint(len(must)) - 1

	e := &weakEnum{
		typ:      obj.Type,
		cand:     cand,
		mustMask: mustMask,
		op:       ops[k].Op,
		budget:   opts.budget(),
		memo:     make(map[memoKey]struct{}),
		found:    make(map[int64]bool),
	}
	if err := e.dfs(obj.Init, 0); err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(e.found))
	for r := range e.found {
		out = append(out, r)
	}
	return out, nil
}

type weakEnum struct {
	typ      spec.Type
	cand     []history.Operation
	mustMask uint64
	op       spec.Op
	budget   int64
	memo     map[memoKey]struct{}
	found    map[int64]bool
}

func (e *weakEnum) dfs(state spec.State, used uint64) error {
	e.budget--
	if e.budget < 0 {
		return ErrBudget
	}
	key := memoKey{mask: used, state: state}
	if _, seen := e.memo[key]; seen {
		return nil
	}
	e.memo[key] = struct{}{}
	if used&e.mustMask == e.mustMask {
		// All mandatory predecessors placed: op may terminate here.
		for _, out := range e.typ.Step(state, e.op) {
			e.found[out.Resp] = true
		}
	}
	for i := range e.cand {
		bit := uint64(1) << uint(i)
		if used&bit != 0 {
			continue
		}
		for _, out := range e.typ.Step(state, e.cand[i].Op) {
			if err := e.dfs(out.Next, used|bit); err != nil {
				return err
			}
		}
	}
	return nil
}
