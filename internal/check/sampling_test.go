package check

import (
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// Under sampling only every Nth window pays the MinT search, the skipped
// windows are counted, and the verdict over the sampled series still
// stabilizes on a clean run.
func TestIncrementalSamplingSkipsWindows(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	m := NewIncremental(obj, IncrementalConfig{Stride: 16})
	m.SetSampleEvery(4)
	h := serialCounter(t, 200) // 400 events = 25 full windows
	if v := feedAll(t, m, h); v != nil {
		t.Fatalf("clean sampled run flagged: %v", v)
	}
	if m.SkippedWindows() == 0 {
		t.Fatal("sampling engaged but no window was skipped")
	}
	// Skipped + measured = all closed windows; measured = Checks.
	if m.SkippedWindows()+m.Checks() != 25 {
		t.Fatalf("skipped %d + checks %d != 25 windows", m.SkippedWindows(), m.Checks())
	}
	if m.MaxSampleEvery() != 4 {
		t.Fatalf("MaxSampleEvery = %d, want 4", m.MaxSampleEvery())
	}
	if v := m.Verdict(); v.Trend != TrendStabilized {
		t.Fatalf("trend = %s, want stabilized", v.Trend)
	}
}

// The rebase fold still runs on skipped windows: a violation inside an
// unsampled window is invisible, but later sampled windows check against
// the correctly folded state, so a clean tail stays clean.
func TestIncrementalSamplingFoldStaysCorrect(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	for _, every := range []int{1, 2, 3, 5} {
		m := NewIncremental(obj, IncrementalConfig{Stride: 10})
		m.SetSampleEvery(every)
		if v := feedAll(t, m, serialCounter(t, 150)); v != nil {
			t.Fatalf("sampleEvery=%d: clean run flagged: %v", every, v)
		}
	}
}

// Finish always measures the tail window, even when the sampling cadence
// would have skipped it — a run never ends on an unchecked window.
func TestIncrementalSamplingFinishMeasures(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	m := NewIncremental(obj, IncrementalConfig{Stride: 16})
	m.SetSampleEvery(100) // would skip essentially everything
	h := serialCounter(t, 40)
	// Tail violation: duplicate response in the final partial window.
	mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), 40))
	mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), 40))
	if v := feedAll(t, m, h); v == nil {
		t.Fatal("tail violation escaped a sampled run")
	}
}

// A measured window past half the tolerance escalates sampling back to
// exhaustive checking.
func TestIncrementalSamplingEscalation(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	m := NewIncremental(obj, IncrementalConfig{Stride: 8, MaxT: 3})
	m.SetSampleEvery(2)
	h := history.New()
	// Every window needs t = 2 (a genuinely stale serial read per round):
	// within tolerance 3, but 2t > MaxT, so the first measured window must
	// flip sampling off.
	k := int64(0)
	for round := 0; round < 8; round++ {
		mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), k+1))
		mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), k))
		mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), k+2))
		mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), k+3))
		k += 4
	}
	if v := feedAll(t, m, h); v != nil {
		t.Fatalf("tolerated staleness flagged: %v", v)
	}
	if m.Escalations() == 0 {
		t.Fatal("near-violation did not escalate sampling")
	}
	if m.SampleEvery() != 1 {
		t.Fatalf("SampleEvery = %d after escalation, want 1", m.SampleEvery())
	}
	if m.MaxSampleEvery() != 2 {
		t.Fatalf("MaxSampleEvery = %d, want 2", m.MaxSampleEvery())
	}
}

// The sampling cadence is a countdown from the moment the knob turns, not
// a phase of the global window count: after SetSampleEvery(n), exactly n-1
// windows skip and the nth measures, no matter how many windows had
// already closed. (The old winCount%n bookkeeping measured early or late
// depending on the enable point.)
func TestIncrementalSamplingCountdownPhase(t *testing.T) {
	const stride = 16 // 8 serial ops per window
	cases := []struct {
		before int // windows closed exhaustively before the knob turns
		n      int
		after  int // windows closed with sampling on
	}{
		{before: 0, n: 4, after: 8},
		{before: 1, n: 4, after: 8},
		{before: 3, n: 4, after: 8},
		{before: 4, n: 4, after: 8},
		{before: 5, n: 3, after: 9},
	}
	for _, c := range cases {
		obj := spec.NewObject(spec.FetchInc{})
		m := NewIncremental(obj, IncrementalConfig{Stride: stride})
		h := serialCounter(t, (c.before+c.after)*stride/2)
		cut := c.before * stride
		for i := 0; i < cut; i++ {
			if _, err := m.Feed(h.Event(i)); err != nil {
				t.Fatal(err)
			}
		}
		m.SetSampleEvery(c.n)
		for i := cut; i < h.Len(); i++ {
			if _, err := m.Feed(h.Event(i)); err != nil {
				t.Fatal(err)
			}
		}
		measured := c.after / c.n
		if got := m.Checks(); got != c.before+measured {
			t.Errorf("before=%d n=%d: checks = %d, want %d+%d", c.before, c.n, got, c.before, measured)
		}
		if got := m.SkippedWindows(); got != c.after-measured {
			t.Errorf("before=%d n=%d: skipped = %d, want %d", c.before, c.n, got, c.after-measured)
		}
		// The measured windows sit at before+n, before+2n, ... regardless of
		// phase: the sample stamps pin the positions, not just the counts.
		samples := m.Samples()[c.before:]
		for i, s := range samples {
			want := (c.before + (i+1)*c.n) * stride
			if s.Events != want {
				t.Errorf("before=%d n=%d: sample %d at %d events, want %d", c.before, c.n, i, s.Events, want)
			}
		}
	}
}

// Observe-only monitors (NoViolation / negative MaxT) never escalate:
// positive window MinT is the normal EL signature there.
func TestIncrementalSamplingNoEscalationObserved(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	for _, cfg := range []IncrementalConfig{
		{Stride: 8, NoViolation: true},
		{Stride: 8, MaxT: -1},
	} {
		m := NewIncremental(obj, cfg)
		m.SetSampleEvery(2)
		h := history.New()
		resp := int64(0)
		for round := 0; round < 6; round++ {
			mustDo(t, h.Invoke(0, "C", spec.MakeOp(spec.MethodFetchInc)))
			mustDo(t, h.Invoke(1, "C", spec.MakeOp(spec.MethodFetchInc)))
			mustDo(t, h.Invoke(2, "C", spec.MakeOp(spec.MethodFetchInc)))
			mustDo(t, h.Invoke(3, "C", spec.MakeOp(spec.MethodFetchInc)))
			mustDo(t, h.Respond(3, resp+3))
			mustDo(t, h.Respond(2, resp+2))
			mustDo(t, h.Respond(1, resp+1))
			mustDo(t, h.Respond(0, resp))
			resp += 4
		}
		if v := feedAll(t, m, h); v != nil {
			t.Fatalf("observe-only run flagged: %v", v)
		}
		if m.Escalations() != 0 {
			t.Fatalf("observe-only monitor escalated %d times", m.Escalations())
		}
		if m.SampleEvery() != 2 {
			t.Fatalf("observe-only SampleEvery = %d, want 2", m.SampleEvery())
		}
	}
}
