package check

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

func TestTrackMinTStabilized(t *testing.T) {
	// An atomic counter history: MinT is identically 0 -> stabilized.
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	for i := 0; i < 40; i++ {
		if err := h.Call(i%2, "X", fi, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := TrackMinT(obj, h, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Trend != TrendStabilized {
		t.Fatalf("trend = %v, want stabilized (samples %v)", v.Trend, v.Samples)
	}
	if v.FinalMinT != 0 {
		t.Fatalf("final MinT = %d, want 0", v.FinalMinT)
	}
}

func TestTrackMinTStabilizedAfterWarmup(t *testing.T) {
	// Garbage responses for the first 10 ops, atomic afterwards: MinT
	// settles at the warmup boundary -> stabilized with nonzero MinT.
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	next := int64(0)
	for i := 0; i < 40; i++ {
		resp := next
		if i < 10 {
			resp = 0 // duplicated garbage during warmup
		}
		next++
		if err := h.Call(i%2, "X", fi, resp); err != nil {
			t.Fatal(err)
		}
	}
	// Recompute responses after warmup to be the true values starting from
	// 10 increments already applied: they are 10, 11, ... which is what
	// the loop produced for i >= 10.
	v, err := TrackMinT(obj, h, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Trend != TrendStabilized {
		t.Fatalf("trend = %v, want stabilized (samples %v)", v.Trend, v.Samples)
	}
	if v.FinalMinT == 0 || v.FinalMinT > 20 {
		t.Fatalf("final MinT = %d, want in (0,20]", v.FinalMinT)
	}
}

func TestTrackMinTDiverging(t *testing.T) {
	// A sloppy counter that duplicates every response: MinT grows with the
	// run -> diverging (the Corollary 19 signature).
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	for i := 0; i < 60; i++ {
		if err := h.Call(i%2, "X", fi, int64(i/2)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := TrackMinT(obj, h, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Trend != TrendDiverging {
		t.Fatalf("trend = %v, want diverging (samples %v, slope %f)", v.Trend, v.Samples, v.Slope)
	}
	if v.Slope <= 0 {
		t.Fatalf("slope = %f, want positive", v.Slope)
	}
}

func TestTrackMinTShortRunInconclusive(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	if err := h.Call(0, "X", fi, 0); err != nil {
		t.Fatal(err)
	}
	v, err := TrackMinT(obj, h, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Trend != TrendInconclusive {
		t.Fatalf("trend = %v, want inconclusive", v.Trend)
	}
}

func TestTrackMinTStrideClamp(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	for i := 0; i < 6; i++ {
		if err := h.Call(0, "X", fi, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := TrackMinT(obj, h, 0, Options{}) // stride 0 clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Samples) != h.Len() {
		t.Fatalf("samples = %d, want %d", len(v.Samples), h.Len())
	}
}

func TestTrendString(t *testing.T) {
	for _, tc := range []struct {
		tr   Trend
		want string
	}{
		{TrendStabilized, "stabilized"},
		{TrendDiverging, "diverging"},
		{TrendInconclusive, "inconclusive"},
		{Trend(42), "trend(42)"},
	} {
		if got := tc.tr.String(); got != tc.want {
			t.Errorf("Trend(%d).String() = %q, want %q", int(tc.tr), got, tc.want)
		}
	}
}

func TestVerdictSamplesMonotoneEvents(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	for i := 0; i < 23; i++ {
		if err := h.Call(i%3, "X", fi, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := TrackMinT(obj, h, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(v.Samples); i++ {
		if v.Samples[i].Events <= v.Samples[i-1].Events {
			t.Fatalf("sample events not increasing: %v", v.Samples)
		}
	}
	if last := v.Samples[len(v.Samples)-1]; last.Events != h.Len() {
		t.Fatalf("last sample at %d, want %d", last.Events, h.Len())
	}
}

func TestTrendDivergenceSlopeReflectsRate(t *testing.T) {
	// Sanity on the slope: duplicating every response forces the cut past
	// roughly half the events, so slope should be near 1 (MinT grows about
	// one event per event... actually per two events per duplicated pair,
	// slope around 1 for full duplication across prefix growth).
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	for i := 0; i < 80; i++ {
		if err := h.Call(i%2, "X", fi, int64(i/2)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := TrackMinT(obj, h, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Slope < 0.5 {
		t.Fatalf("slope = %f, want >= 0.5 for fully sloppy counter", v.Slope)
	}
	if !strings.Contains(v.Trend.String(), "diverging") {
		t.Fatalf("trend = %v", v.Trend)
	}
}
