package check

import (
	"fmt"
	"math/bits"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// TLinearizable reports whether the single-object history h is
// t-linearizable with respect to obj (Definition 2): there is a legal
// sequential history S containing every operation completed in h (plus,
// optionally, pending ones) such that
//
//   - real-time order is respected between operations whose response and
//     invocation events both lie in the suffix of h after the first t
//     events, and
//   - every operation whose response lies in that suffix has the same
//     response in S. Operations answered within the first t events may take
//     any legal response in S.
//
// All events of h must be on a single object; Linearizable and the *Local
// variants handle multi-object histories via locality (Lemmas 7 and 8).
func TLinearizable(obj spec.Object, h *history.History, t int, opts Options) (bool, error) {
	if err := oneObject(h); err != nil {
		return false, err
	}
	if t < 0 {
		t = 0
	}
	if !opts.NoFastPath {
		switch obj.Type.(type) {
		case spec.FetchInc:
			return fetchIncTLinearizable(obj, h, t)
		case spec.Consensus:
			return consensusTLinearizable(obj, h, t)
		}
	}
	ops := h.Operations()
	if len(ops) > MaxOpsPerObject {
		return false, ErrTooLarge
	}
	pr := newTLinProblem(obj, ops, t, opts)
	return pr.solve()
}

// Linearizable reports whether h is linearizable with respect to objs,
// checking each object's projection independently (linearizability is a
// local property; 0-linearizability coincides with linearizability).
func Linearizable(objs map[string]spec.Object, h *history.History, opts Options) (bool, error) {
	ok, _, err := LinearizableExplain(objs, h, opts)
	return ok, err
}

// LinearizableExplain is Linearizable but also names the first object whose
// projection fails.
func LinearizableExplain(objs map[string]spec.Object, h *history.History, opts Options) (bool, string, error) {
	for _, name := range h.Objects() {
		obj, ok := objs[name]
		if !ok {
			return false, name, fmt.Errorf("check: no specification for object %q", name)
		}
		lin, err := TLinearizable(obj, h.ByObject(name), 0, opts)
		if err != nil {
			return false, name, fmt.Errorf("object %q: %w", name, err)
		}
		if !lin {
			return false, name, nil
		}
	}
	return true, "", nil
}

// MinT returns the least t for which the single-object history h is
// t-linearizable (binary search, justified by the monotonicity of
// t-linearizability in t, Lemma 5). The boolean result is false if h is not
// t-linearizable even for t = h.Len(), which cannot happen for total types.
func MinT(obj spec.Object, h *history.History, opts Options) (int, bool, error) {
	ok, err := TLinearizable(obj, h, h.Len(), opts)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	lo, hi := 0, h.Len()
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := TLinearizable(obj, h, mid, opts)
		if err != nil {
			return 0, false, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, true, nil
}

// MinTLocal returns the per-object minimum t values {t_o} of Lemma 7: for
// each object o in h, the least t_o such that H|o is t_o-linearizable
// (counted in H|o's own events).
func MinTLocal(objs map[string]spec.Object, h *history.History, opts Options) (map[string]int, error) {
	out := make(map[string]int)
	for _, name := range h.Objects() {
		obj, ok := objs[name]
		if !ok {
			return nil, fmt.Errorf("check: no specification for object %q", name)
		}
		t, ok2, err := MinT(obj, h.ByObject(name), opts)
		if err != nil {
			return nil, fmt.Errorf("object %q: %w", name, err)
		}
		if !ok2 {
			return nil, fmt.Errorf("object %q: not t-linearizable for any t (non-total type?)", name)
		}
		out[name] = t
	}
	return out, nil
}

// MinTGlobalUpper lifts per-object t_o values to a global t via the
// construction in the proof of Lemma 7: the least t such that the first t
// events of h include, for every object o, the first t_o events of H|o.
// It is an upper bound for the exact global MinT.
func MinTGlobalUpper(objs map[string]spec.Object, h *history.History, opts Options) (int, error) {
	local, err := MinTLocal(objs, h, opts)
	if err != nil {
		return 0, err
	}
	t := 0
	for name, to := range local {
		if to == 0 {
			continue
		}
		idx := h.ObjectEventIndex(name)
		if to > len(idx) {
			to = len(idx)
		}
		if g := idx[to-1] + 1; g > t {
			t = g
		}
	}
	return t, nil
}

// TLinearizableLocal checks the necessary condition of Lemma 7's only-if
// direction: if the multi-object history h is t-linearizable, then every
// per-object projection is t-linearizable with the same numeral t. A false
// result certifies that h is not t-linearizable (cheaply — no product
// state); a true result is NOT sufficient, as the Proposition 9
// counterexample shows even for histories over finitely many objects when
// t is fixed: each projection can pass while the global cut fails.
func TLinearizableLocal(objs map[string]spec.Object, h *history.History, t int, opts Options) (bool, string, error) {
	for _, name := range h.Objects() {
		obj, ok := objs[name]
		if !ok {
			return false, name, fmt.Errorf("check: no specification for object %q", name)
		}
		lin, err := TLinearizable(obj, h.ByObject(name), t, opts)
		if err != nil {
			return false, name, fmt.Errorf("object %q: %w", name, err)
		}
		if !lin {
			return false, name, nil
		}
	}
	return true, "", nil
}

// MinTMulti computes the exact least global t for which a multi-object
// history is t-linearizable, by binary search over the product-state
// checker (Lemma 5's monotonicity holds verbatim for multi-object
// histories). It is exponential in the concurrent-operation count; for
// real workloads use MinTGlobalUpper (the Lemma 7 lift), which bounds it
// from above.
func MinTMulti(objs map[string]spec.Object, h *history.History, opts Options) (int, bool, error) {
	ok, err := TLinearizableMulti(objs, h, h.Len(), opts)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	lo, hi := 0, h.Len()
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := TLinearizableMulti(objs, h, mid, opts)
		if err != nil {
			return 0, false, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, true, nil
}

// TLinearizableMulti checks t-linearizability of a multi-object history
// directly, using a product-state search (no locality shortcut). It exists
// to cross-validate the locality lemmas on small histories and to handle
// histories where a single global t matters; prefer the per-object entry
// points for real workloads.
func TLinearizableMulti(objs map[string]spec.Object, h *history.History, t int, opts Options) (bool, error) {
	if t < 0 {
		t = 0
	}
	ops := h.Operations()
	if len(ops) > MaxOpsPerObject {
		return false, ErrTooLarge
	}
	names := h.Objects()
	objIdx := make(map[string]int, len(names))
	states := make([]spec.State, len(names))
	for i, name := range names {
		obj, ok := objs[name]
		if !ok {
			return false, fmt.Errorf("check: no specification for object %q", name)
		}
		objIdx[name] = i
		states[i] = obj.Init
	}
	pr := &multiProblem{
		objs:   objs,
		names:  names,
		objIdx: objIdx,
		ops:    ops,
		budget: opts.budget(),
		memo:   make(map[string]struct{}),
	}
	pr.stack = make([][]spec.State, len(ops)+1)
	for i := range pr.stack {
		pr.stack[i] = make([]spec.State, len(names))
	}
	pr.prepare(t)
	return pr.dfs(states, 0)
}

// oneObject verifies that all events of h are on one object.
func oneObject(h *history.History) error {
	objs := h.Objects()
	if len(objs) > 1 {
		return fmt.Errorf("check: single-object checker given %d objects %v", len(objs), objs)
	}
	return nil
}

// opConstraints precomputes, for an operation list and a cut t, the
// predecessor masks, the constrained-response set and the completed set.
// Shared by the single-object and product-state engines.
func opConstraints(ops []history.Operation, t int) (pred []uint64, constrained, completed uint64) {
	pred = make([]uint64, len(ops))
	for j, opj := range ops {
		if opj.Res >= 0 {
			completed |= 1 << uint(j)
			if opj.Res >= t {
				constrained |= 1 << uint(j)
			}
		}
		if opj.Inv < t {
			continue // invocation in the prefix: no incoming real-time edges
		}
		for i, opi := range ops {
			if i == j || opi.Res < 0 || opi.Res < t {
				continue
			}
			if opi.Res < opj.Inv {
				pred[j] |= 1 << uint(i)
			}
		}
	}
	return pred, constrained, completed
}

// ----------------------------------------------------------------------------
// Single-object engine.

type tlinProblem struct {
	typ         spec.Type
	det         spec.DetStepper // non-nil fast path: no Step slice per node
	init        spec.State
	ops         []history.Operation
	pred        []uint64
	constrained uint64
	completed   uint64
	budget      int64
	memo        map[memoKey]struct{}
	noMemo      bool
}

type memoKey struct {
	mask  uint64
	state spec.State
}

func newTLinProblem(obj spec.Object, ops []history.Operation, t int, opts Options) *tlinProblem {
	pr := &tlinProblem{
		typ:    obj.Type,
		init:   obj.Init,
		ops:    ops,
		budget: opts.budget(),
		memo:   make(map[memoKey]struct{}),
		noMemo: opts.NoMemo,
	}
	if det, ok := obj.Type.(spec.DetStepper); ok {
		pr.det = det
	}
	pr.pred, pr.constrained, pr.completed = opConstraints(ops, t)
	return pr
}

func (pr *tlinProblem) solve() (bool, error) {
	return pr.dfs(pr.init, 0)
}

func (pr *tlinProblem) dfs(state spec.State, chosen uint64) (bool, error) {
	if chosen&pr.completed == pr.completed {
		return true, nil
	}
	pr.budget--
	if pr.budget < 0 {
		return false, ErrBudget
	}
	key := memoKey{mask: chosen, state: state}
	if !pr.noMemo {
		if _, seen := pr.memo[key]; seen {
			return false, nil
		}
	}
	for i := range pr.ops {
		bit := uint64(1) << uint(i)
		if chosen&bit != 0 || pr.pred[i]&^chosen != 0 {
			continue
		}
		if pr.det != nil {
			out, applicable := pr.det.StepDet(state, pr.ops[i].Op)
			if !applicable || (pr.constrained&bit != 0 && out.Resp != pr.ops[i].Resp) {
				continue
			}
			ok, err := pr.dfs(out.Next, chosen|bit)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			continue
		}
		for _, out := range pr.typ.Step(state, pr.ops[i].Op) {
			if pr.constrained&bit != 0 && out.Resp != pr.ops[i].Resp {
				continue
			}
			ok, err := pr.dfs(out.Next, chosen|bit)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	if !pr.noMemo {
		pr.memo[key] = struct{}{}
	}
	return false, nil
}

// ----------------------------------------------------------------------------
// Product-state engine for multi-object histories.

type multiProblem struct {
	objs        map[string]spec.Object
	names       []string
	objIdx      map[string]int
	ops         []history.Operation
	pred        []uint64
	constrained uint64
	completed   uint64
	budget      int64
	// memo stores failed (mask, product-state) pairs under a compact byte
	// encoding (appendProductKey) instead of the historical fmt-rendered
	// string: lookups reuse keyBuf and allocate nothing; only first-time
	// insertions materialize the key.
	memo   map[string]struct{}
	keyBuf []byte
	// stack provides one product-state row per search depth, so advancing
	// into a child reuses a preallocated row instead of copying into a
	// fresh slice per edge.
	stack [][]spec.State
}

func (pr *multiProblem) prepare(t int) {
	pr.pred, pr.constrained, pr.completed = opConstraints(pr.ops, t)
}

// appendProductKey appends a compact injective encoding of (mask, states)
// to b. States of the concrete spec types are int64 or string; anything
// else falls back to fmt.
func appendProductKey(b []byte, mask uint64, states []spec.State) []byte {
	b = spec.AppendFPInt(b, int64(mask))
	for _, st := range states {
		switch v := st.(type) {
		case int64:
			b = spec.AppendFPInt(append(b, 'i'), v)
		case string:
			b = spec.AppendFPInt(append(b, 's'), int64(len(v)))
			b = append(b, v...)
		default:
			b = append(b, '?')
			b = fmt.Appendf(b, "%v", v)
			b = append(b, 0)
		}
	}
	return b
}

func (pr *multiProblem) dfs(states []spec.State, chosen uint64) (bool, error) {
	if chosen&pr.completed == pr.completed {
		return true, nil
	}
	pr.budget--
	if pr.budget < 0 {
		return false, ErrBudget
	}
	pr.keyBuf = appendProductKey(pr.keyBuf[:0], chosen, states)
	if _, seen := pr.memo[string(pr.keyBuf)]; seen {
		return false, nil
	}
	depth := bits.OnesCount64(chosen)
	for i := range pr.ops {
		bit := uint64(1) << uint(i)
		if chosen&bit != 0 || pr.pred[i]&^chosen != 0 {
			continue
		}
		oi := pr.objIdx[pr.ops[i].Obj]
		typ := pr.objs[pr.ops[i].Obj].Type
		for _, out := range typ.Step(states[oi], pr.ops[i].Op) {
			if pr.constrained&bit != 0 && out.Resp != pr.ops[i].Resp {
				continue
			}
			next := pr.stack[depth+1]
			copy(next, states)
			next[oi] = out.Next
			ok, err := pr.dfs(next, chosen|bit)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	pr.keyBuf = appendProductKey(pr.keyBuf[:0], chosen, states)
	pr.memo[string(pr.keyBuf)] = struct{}{}
	return false, nil
}
