package check

import (
	"math/rand"
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// randomFetchIncHistory produces a random fetch&inc history. Responses are
// mostly consistent with some linearization but corrupted with the given
// probability; some operations are left pending.
func randomFetchIncHistory(r *rand.Rand, nproc, maxOps int, corrupt float64) *history.History {
	h := history.New()
	counter := int64(0)
	pending := make(map[int]bool)
	invoked := 0
	nops := 1 + r.Intn(maxOps)
	for steps := 0; steps < 6*maxOps; steps++ {
		p := r.Intn(nproc)
		if pending[p] {
			resp := counter
			counter++
			if r.Float64() < corrupt {
				resp = int64(r.Intn(maxOps))
			}
			if r.Float64() < 0.15 {
				continue // leave it pending a while longer
			}
			if err := h.Respond(p, resp); err != nil {
				panic(err)
			}
			delete(pending, p)
		} else if invoked < nops {
			if err := h.Invoke(p, "X", spec.MakeOp(spec.MethodFetchInc)); err != nil {
				panic(err)
			}
			pending[p] = true
			invoked++
		}
	}
	return h
}

func TestFetchIncFastPathAgreesWithGenericEngine(t *testing.T) {
	// The polynomial Lemma 17 checker must agree with the exponential
	// generic engine on every (history, t) pair.
	obj := spec.NewObject(spec.FetchInc{})
	r := rand.New(rand.NewSource(5))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		h := randomFetchIncHistory(r, 3, 8, 0.35)
		for tt := 0; tt <= h.Len(); tt++ {
			fast, err := fetchIncTLinearizable(obj, h, tt)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := TLinearizable(obj, h, tt, Options{NoFastPath: true})
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Fatalf("trial %d t=%d: fast=%v generic=%v\n%s", trial, tt, fast, slow, h)
			}
			checked++
		}
	}
	if checked < 500 {
		t.Fatalf("only %d cases checked; generator too weak", checked)
	}
}

func TestFetchIncFastPathNonzeroInit(t *testing.T) {
	obj := spec.Object{Type: spec.FetchInc{InitVal: 10}, Init: int64(10)}
	h := history.New()
	for i := int64(10); i < 14; i++ {
		if err := h.Call(0, "X", spec.MakeOp(spec.MethodFetchInc), i); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := TLinearizable(obj, h, 0, Options{})
	if err != nil || !ok {
		t.Fatalf("offset counter: %v, %v; want true", ok, err)
	}
	// A response below the initial value is illegal at t=0.
	bad := history.New()
	if err := bad.Call(0, "X", spec.MakeOp(spec.MethodFetchInc), 3); err != nil {
		t.Fatal(err)
	}
	ok, err = TLinearizable(obj, bad, 0, Options{})
	if err != nil || ok {
		t.Fatalf("below-init response: %v, %v; want false", ok, err)
	}
}

func TestFetchIncFastPathRejectsForeignOps(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	if err := h.Call(0, "X", spec.MakeOp(spec.MethodRead), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fetchIncTLinearizable(obj, h, 0); err == nil {
		t.Error("fast path accepted a read operation")
	}
}

func TestFetchIncGapFilling(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	// Two ops answered in the prefix (free), suffix ops take slots 2 and 3:
	// gaps 0,1 are filled by the free ops.
	h := build(t).
		inv(0, "X", fi).inv(1, "X", fi).
		res(0, 7).res(1, 9). // events 0..3; responses garbage but in prefix
		call(0, "X", fi, 2).
		call(1, "X", fi, 3).h
	ok, err := TLinearizable(obj, h, 4, Options{})
	if err != nil || !ok {
		t.Fatalf("gap filling by free ops: %v, %v; want true", ok, err)
	}
	// With only one free op there is a hole at slot 1 that nothing fills.
	h2 := build(t).
		inv(0, "X", fi).
		res(0, 7).
		call(0, "X", fi, 2).
		call(1, "X", fi, 3).h
	ok, err = TLinearizable(obj, h2, 2, Options{})
	if err != nil || ok {
		t.Fatalf("unfillable gap: %v, %v; want false", ok, err)
	}
}

func TestFetchIncPendingThreshold(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	// A pending op invoked after a suffix response with slot 1 cannot fill
	// gap 0 (real-time lower bound), so the history is not t-linearizable.
	h := build(t).
		call(0, "X", fi, 1). // suffix op with slot 1 (events 0,1)
		inv(1, "X", fi).h    // pending, invoked at event 2 (after res at 1)
	ok, err := TLinearizable(obj, h, 0, Options{})
	if err != nil || ok {
		t.Fatalf("pending below threshold filled gap: %v, %v; want false", ok, err)
	}
	// But a pending op invoked before the suffix response can fill gap 0.
	h2 := build(t).
		inv(1, "X", fi).
		call(0, "X", fi, 1).h
	ok, err = TLinearizable(obj, h2, 0, Options{})
	if err != nil || !ok {
		t.Fatalf("pending above threshold: %v, %v; want true", ok, err)
	}
}

func TestFetchIncRealTimeEdgeBetweenConstrained(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	// Sequential ops with decreasing responses violate real-time order.
	h := build(t).
		call(0, "X", fi, 1).
		call(0, "X", fi, 0).h
	ok, err := TLinearizable(obj, h, 0, Options{})
	if err != nil || ok {
		t.Fatalf("decreasing sequential responses: %v, %v; want false", ok, err)
	}
	// With t past the first response, the first op becomes free and the
	// history is fixable.
	ok, err = TLinearizable(obj, h, 2, Options{})
	if err != nil || !ok {
		t.Fatalf("after cut: %v, %v; want true", ok, err)
	}
}

func TestFetchIncSlots(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := build(t).
		call(0, "X", fi, 0).
		call(1, "X", fi, 1).h
	slots, err := FetchIncSlots(obj, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slots[0] != 0 || slots[1] != 1 {
		t.Fatalf("slots = %v", slots)
	}
	// With t = 2 the first op is unconstrained and has no slot.
	slots, err = FetchIncSlots(obj, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := slots[0]; ok {
		t.Fatalf("slot for free op should be absent: %v", slots)
	}
}

func TestMinTFetchIncLongHistory(t *testing.T) {
	// The fast path makes MinT tractable on long histories. A sloppy
	// counter that answers k/2 duplicated values has MinT that grows; an
	// atomic counter has MinT 0.
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	for i := 0; i < 120; i++ {
		if err := h.Call(i%2, "X", fi, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	mt, ok, err := MinT(obj, h, Options{})
	if err != nil || !ok || mt != 0 {
		t.Fatalf("atomic long history MinT = %d, %v, %v; want 0", mt, ok, err)
	}

	dup := history.New()
	for i := 0; i < 120; i++ {
		if err := dup.Call(i%2, "X", fi, int64(i/2)); err != nil {
			t.Fatal(err)
		}
	}
	mt, ok, err = MinT(obj, dup, Options{})
	if err != nil || !ok {
		t.Fatalf("MinT failed: %v %v", ok, err)
	}
	// Every duplicated pair forces the cut past its first response; with
	// duplicates throughout, MinT must reach into the last pair.
	if mt < 200 {
		t.Fatalf("sloppy long history MinT = %d; want near the end (>=200)", mt)
	}
}
