package check

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestWeakConsistencyRegisterBasics(t *testing.T) {
	// A read that returns a value nobody wrote is "out of left field".
	h := build(t).
		call(0, "X", wr(1), 0).
		call(1, "X", rd, 7).h
	ok, bad, err := WeaklyConsistentExplain(regX, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok || bad == "" {
		t.Fatalf("out-of-left-field read accepted (ok=%v bad=%q)", ok, bad)
	}

	// A stale read (initial value) by another process is fine even after a
	// write by someone else: weak consistency only forces your own ops.
	h2 := build(t).
		call(0, "X", wr(1), 0).
		call(1, "X", rd, 0).h
	ok, err = WeaklyConsistent(regX, h2, Options{})
	if err != nil || !ok {
		t.Fatalf("stale read rejected: %v, %v", ok, err)
	}

	// But a process that wrote 1 itself may not read the initial 0 back.
	h3 := build(t).
		call(0, "X", wr(1), 0).
		call(0, "X", rd, 0).h
	ok, err = WeaklyConsistent(regX, h3, Options{})
	if err != nil || ok {
		t.Fatalf("self-stale read accepted: %v, %v", ok, err)
	}

	// Reading another process's value instead of your own is allowed: S
	// can order your write before theirs.
	h4 := build(t).
		call(1, "X", wr(2), 0).
		call(0, "X", wr(1), 0).
		call(0, "X", rd, 2).h
	ok, err = WeaklyConsistent(regX, h4, Options{})
	if err != nil || !ok {
		t.Fatalf("cross read rejected: %v, %v", ok, err)
	}

	// A value whose write is invoked before the read's response is
	// readable even if the write is still pending.
	h5 := build(t).
		inv(0, "X", wr(5)).
		call(1, "X", rd, 5).h
	ok, err = WeaklyConsistent(regX, h5, Options{})
	if err != nil || !ok {
		t.Fatalf("pending write value rejected: %v, %v", ok, err)
	}

	// A value written only AFTER the read terminated is out of left field.
	h6 := build(t).
		call(1, "X", rd, 5).
		call(0, "X", wr(5), 0).h
	ok, err = WeaklyConsistent(regX, h6, Options{})
	if err != nil || ok {
		t.Fatalf("future value accepted: %v, %v", ok, err)
	}

	// A write answering nonzero is illegal.
	h7 := build(t).call(0, "X", wr(1), 3).h
	ok, err = WeaklyConsistent(regX, h7, Options{})
	if err != nil || ok {
		t.Fatalf("nonzero write ack accepted: %v, %v", ok, err)
	}
}

func TestWeakConsistencyFetchInc(t *testing.T) {
	// Duplicate responses are weakly consistent (each op has a witness
	// ignoring the other): this is exactly why eventual linearizability is
	// strictly stronger than weak consistency.
	h := build(t).
		inv(0, "X", fi).inv(1, "X", fi).
		res(0, 0).res(1, 0).h
	ok, err := WeaklyConsistent(fincX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("duplicate fetchinc rejected: %v, %v", ok, err)
	}

	// A process must count its own increments: second op by p0 cannot
	// return 0 again.
	h2 := build(t).
		call(0, "X", fi, 0).
		call(0, "X", fi, 0).h
	ok, err = WeaklyConsistent(fincX, h2, Options{})
	if err != nil || ok {
		t.Fatalf("self-duplicate accepted: %v, %v", ok, err)
	}

	// Responses can never exceed the number of candidate predecessors.
	h3 := build(t).call(0, "X", fi, 5).h
	ok, err = WeaklyConsistent(fincX, h3, Options{})
	if err != nil || ok {
		t.Fatalf("overshoot accepted: %v, %v", ok, err)
	}
}

func TestWeakConsistencyFastPathsAgreeWithGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		h := randomRegisterHistory(r, 3, 6, 0.5)
		fast, err := WeaklyConsistent(regX, h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := WeaklyConsistent(regX, h, Options{NoFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("register trial %d: fast=%v generic=%v\n%s", trial, fast, slow, h)
		}
	}
	for trial := 0; trial < 80; trial++ {
		h := randomFetchIncHistory(r, 3, 6, 0.5)
		fast, err := WeaklyConsistent(fincX, h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := WeaklyConsistent(fincX, h, Options{NoFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("fetchinc trial %d: fast=%v generic=%v\n%s", trial, fast, slow, h)
		}
	}
}

func TestWeakResponsesRegister(t *testing.T) {
	// p1 is about to answer a read; writes of 1 (complete) and 5 (pending)
	// are in flight, and p1 itself never wrote, so {0, 1, 5} are the
	// weakly consistent answers.
	h := build(t).
		call(0, "X", wr(1), 0).
		inv(2, "X", wr(5)).
		inv(1, "X", rd).h
	got, err := WeakResponses(regX["X"], h, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{0, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("WeakResponses = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WeakResponses = %v, want %v", got, want)
		}
	}

	// After p1 writes 9 itself, 0 is no longer an answer for its read.
	h2 := build(t).
		call(0, "X", wr(1), 0).
		call(1, "X", wr(9), 0).
		inv(1, "X", rd).h
	got, err = WeakResponses(regX["X"], h2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want = []int64{1, 9}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("WeakResponses = %v, want %v", got, want)
	}
}

func TestWeakResponsesFetchInc(t *testing.T) {
	// p0 did one op (0), p1 in flight, p0 asking again: must return >= 1
	// (own op counted) and <= 2 (own + p1's candidate).
	h := build(t).
		call(0, "X", fi, 0).
		inv(1, "X", fi).
		inv(0, "X", fi).h
	got, err := WeakResponses(fincX["X"], h, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("WeakResponses = %v, want [1 2]", got)
	}
}

func TestWeakResponsesErrors(t *testing.T) {
	h := build(t).call(0, "X", fi, 0).h
	if _, err := WeakResponses(fincX["X"], h, 0, Options{}); err == nil {
		t.Error("WeakResponses accepted a process with no pending op")
	}
	multi := build(t).call(0, "X", fi, 0).inv(0, "Y", rd).h
	if _, err := WeakResponses(fincX["X"], multi, 0, Options{}); err == nil {
		t.Error("WeakResponses accepted a multi-object history")
	}
}

func TestWeakConsistencyQueueGeneric(t *testing.T) {
	// Queue has no fast path: exercises the generic enumerator. A dequeue
	// returning a value that was never enqueued is out of left field.
	queueX := map[string]spec.Object{"X": spec.NewObject(spec.Queue{})}
	enq := func(v int64) spec.Op { return spec.MakeOp1(spec.MethodEnq, v) }
	deq := spec.MakeOp(spec.MethodDeq)

	h := build(t).
		call(0, "X", enq(4), 0).
		call(1, "X", deq, 4).h
	ok, err := WeaklyConsistent(queueX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("legit dequeue rejected: %v, %v", ok, err)
	}

	h2 := build(t).
		call(0, "X", enq(4), 0).
		call(1, "X", deq, 9).h
	ok, err = WeaklyConsistent(queueX, h2, Options{})
	if err != nil || ok {
		t.Fatalf("phantom dequeue accepted: %v, %v", ok, err)
	}

	// Empty-dequeue by a process that enqueued itself is not weakly
	// consistent (its own enqueue must be in S before the dequeue).
	h3 := build(t).
		call(0, "X", enq(4), 0).
		call(0, "X", deq, spec.EmptyDeq).h
	ok, err = WeaklyConsistent(queueX, h3, Options{})
	if err != nil || ok {
		t.Fatalf("self-ignoring dequeue accepted: %v, %v", ok, err)
	}

	// ... but fine for another process (it may not have "seen" the enq).
	h4 := build(t).
		call(0, "X", enq(4), 0).
		call(1, "X", deq, spec.EmptyDeq).h
	ok, err = WeaklyConsistent(queueX, h4, Options{})
	if err != nil || !ok {
		t.Fatalf("fresh-process empty dequeue rejected: %v, %v", ok, err)
	}
}

func TestWeaklyConsistentMissingSpec(t *testing.T) {
	h := build(t).call(0, "X", fi, 0).h
	if _, err := WeaklyConsistent(map[string]spec.Object{}, h, Options{}); err == nil {
		t.Error("missing spec accepted")
	}
}

func TestWeakConsistencySafetyPrefixClosure(t *testing.T) {
	// Lemma 10: weak consistency is prefix-closed. Checked on random
	// histories: whenever H is weakly consistent, so is every prefix.
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		h := randomRegisterHistory(r, 3, 6, 0.4)
		ok, err := WeaklyConsistent(regX, h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		for k := 0; k <= h.Len(); k++ {
			pok, err := WeaklyConsistent(regX, h.Prefix(k), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !pok {
				t.Fatalf("trial %d: H weakly consistent but prefix %d is not\n%s", trial, k, h)
			}
		}
	}
}
