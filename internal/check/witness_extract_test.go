package check

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestLinearizationWitnessRegister(t *testing.T) {
	h := build(t).
		inv(0, "X", wr(1)).
		inv(1, "X", rd).
		res(0, 0).
		res(1, 1).h
	steps, ok, err := Linearization(regX["X"], h, 0, Options{})
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	// The write must precede the read (the read returned 1).
	if steps[0].Op.Method != spec.MethodWrite || steps[1].Op.Method != spec.MethodRead {
		t.Fatalf("order: %v", steps)
	}
	if err := ValidateLinearization(regX["X"], h, 0, steps); err != nil {
		t.Fatalf("auditor rejected the witness: %v", err)
	}
	if !strings.Contains(FormatLinearization(steps), "write(1)") {
		t.Errorf("format: %q", FormatLinearization(steps))
	}
}

func TestLinearizationReassignsPrefixResponses(t *testing.T) {
	// Duplicate fetchinc responses: 3-linearizable with p0's op reassigned.
	h := build(t).
		inv(0, "X", fi).
		inv(1, "X", fi).
		res(0, 0).
		res(1, 0).h
	steps, ok, err := Linearization(fincX["X"], h, 3, Options{})
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	reassigned := 0
	for _, s := range steps {
		if s.RespDiffers {
			reassigned++
		}
	}
	if reassigned != 1 {
		t.Fatalf("reassigned = %d, want 1\n%s", reassigned, FormatLinearization(steps))
	}
	if err := ValidateLinearization(fincX["X"], h, 3, steps); err != nil {
		t.Fatalf("auditor rejected: %v", err)
	}
}

func TestLinearizationAbsentForViolation(t *testing.T) {
	h := build(t).
		call(0, "X", wr(1), 0).
		call(1, "X", rd, 0).h
	_, ok, err := Linearization(regX["X"], h, 0, Options{})
	if err != nil || ok {
		t.Fatalf("witness for a violation: %v %v", ok, err)
	}
}

func TestLinearizationAgreesWithDecision(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		h := randomRegisterHistory(r, 3, 7, 0.4)
		for tt := 0; tt <= h.Len(); tt += 2 {
			dec, err := TLinearizable(regX["X"], h, tt, Options{})
			if err != nil {
				t.Fatal(err)
			}
			steps, ok, err := Linearization(regX["X"], h, tt, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if dec != ok {
				t.Fatalf("trial %d t=%d: decision %v, witness %v", trial, tt, dec, ok)
			}
			if ok {
				if err := ValidateLinearization(regX["X"], h, tt, steps); err != nil {
					t.Fatalf("trial %d t=%d: bad witness: %v", trial, tt, err)
				}
			}
		}
	}
}

func TestValidateLinearizationRejects(t *testing.T) {
	h := build(t).
		call(0, "X", fi, 0).
		call(1, "X", fi, 1).h
	good, ok, err := Linearization(fincX["X"], h, 0, Options{})
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	// Swap the order: violates real-time (op0 precedes op1).
	bad := []LinStep{good[1], good[0]}
	if err := ValidateLinearization(fincX["X"], h, 0, bad); err == nil {
		t.Error("auditor accepted a real-time violation")
	}
	// Wrong response on a constrained op.
	bad2 := []LinStep{{OpIndex: 0, Proc: 0, Op: fi, Resp: 9}, good[1]}
	if err := ValidateLinearization(fincX["X"], h, 0, bad2); err == nil {
		t.Error("auditor accepted a wrong response")
	}
	// Duplicate op.
	bad3 := []LinStep{good[0], good[0]}
	if err := ValidateLinearization(fincX["X"], h, 0, bad3); err == nil {
		t.Error("auditor accepted a duplicate")
	}
	// Missing completed op.
	bad4 := []LinStep{good[0]}
	if err := ValidateLinearization(fincX["X"], h, 0, bad4); err == nil {
		t.Error("auditor accepted an incomplete witness")
	}
	// Out-of-range index.
	bad5 := []LinStep{{OpIndex: 7}}
	if err := ValidateLinearization(fincX["X"], h, 0, bad5); err == nil {
		t.Error("auditor accepted an out-of-range index")
	}
}
