package check

import (
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

func feedAll(t *testing.T, m *Incremental, h *history.History) *WindowViolation {
	t.Helper()
	for i := 0; i < h.Len(); i++ {
		v, err := m.Feed(h.Event(i))
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			return v
		}
	}
	v, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// serialCounter builds k sequential fetchinc ops with correct responses.
func serialCounter(t *testing.T, k int) *history.History {
	t.Helper()
	h := history.New()
	for i := 0; i < k; i++ {
		if err := h.Call(i%3, "C", spec.MakeOp(spec.MethodFetchInc), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestIncrementalCleanRun(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	m := NewIncremental(obj, IncrementalConfig{Stride: 16})
	h := serialCounter(t, 100)
	if v := feedAll(t, m, h); v != nil {
		t.Fatalf("clean history flagged: %v", v)
	}
	if m.Events() != 200 {
		t.Fatalf("events = %d, want 200", m.Events())
	}
	if m.Checks() < 10 {
		t.Fatalf("checks = %d, want >= 10", m.Checks())
	}
	for _, s := range m.Samples() {
		if s.MinT != 0 {
			t.Fatalf("clean window MinT = %d at %d events", s.MinT, s.Events)
		}
	}
	if v := m.Verdict(); v.Trend != TrendStabilized {
		t.Fatalf("trend = %s, want stabilized", v.Trend)
	}
}

// TestIncrementalRebaseMatchesFull checks that the windowed cut does not
// change verdicts: a history that is linearizable as a whole stays clean
// under every stride, including strides that cut mid-operation.
func TestIncrementalRebaseMatchesFull(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	// Concurrent pattern: two overlapping ops per round, correct responses.
	h := history.New()
	resp := int64(0)
	for round := 0; round < 30; round++ {
		mustDo(t, h.Invoke(0, "C", spec.MakeOp(spec.MethodFetchInc)))
		mustDo(t, h.Invoke(1, "C", spec.MakeOp(spec.MethodFetchInc)))
		mustDo(t, h.Respond(1, resp))
		mustDo(t, h.Respond(0, resp+1))
		resp += 2
	}
	for _, stride := range []int{5, 7, 16, 64, 1000} {
		m := NewIncremental(obj, IncrementalConfig{Stride: stride})
		if v := feedAll(t, m, h); v != nil {
			t.Fatalf("stride %d: clean concurrent history flagged: %v", stride, v)
		}
	}
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalCatchesDuplicate(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := serialCounter(t, 40)
	// A lost update far into the run: two ops answer 40.
	mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), 40))
	mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), 40))
	m := NewIncremental(obj, IncrementalConfig{Stride: 16})
	v := feedAll(t, m, h)
	if v == nil {
		t.Fatal("duplicate response not caught")
	}
	if v.MinT <= 0 {
		t.Fatalf("violation MinT = %d, want > 0", v.MinT)
	}
	if v.Window.Len() == 0 || v.End <= v.Start {
		t.Fatalf("bad violation window: %+v", v)
	}
	// The standalone window must itself fail a 0-linearizability check.
	lin, err := TLinearizable(v.Object, v.Window, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin {
		t.Fatal("violation window is 0-linearizable standalone")
	}
	// The monitor freezes after a violation.
	again, err := m.Feed(history.Event{Kind: history.KindInvoke, Proc: 5, Obj: "C", Op: spec.MakeOp(spec.MethodFetchInc)})
	if err != nil || again != v {
		t.Fatalf("frozen monitor: v=%v err=%v", again, err)
	}
}

// TestIncrementalStaleRegime: an eventually-linearizable-style run whose
// early windows answer stale but later windows are exact. With tolerance
// the monitor passes and the trend stabilizes.
func TestIncrementalToleranceAndTrend(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	// Early regime: pairs of concurrent ops both answered with the lower
	// value's op reordered — sequentially legal per window only with t > 0.
	// Build: inv a, inv b, res a=k+1, res b=k (swapped completion order).
	// Per round (one window at stride 8), four serial ops with the first two
	// responses swapped: the second op is a genuinely stale read (it follows
	// the first in real time yet answers a lower value), so the window needs
	// t = 2 — non-zero but within tolerance.
	k := int64(0)
	for round := 0; round < 8; round++ {
		mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), k+1))
		mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), k))
		mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), k+2))
		mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), k+3))
		k += 4
	}
	// Late regime: serial and exact.
	for i := 0; i < 60; i++ {
		mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), k))
		k++
	}
	m := NewIncremental(obj, IncrementalConfig{Stride: 8, MaxT: 4})
	if v := feedAll(t, m, h); v != nil {
		t.Fatalf("tolerated run flagged: %v", v)
	}
	samples := m.Samples()
	if samples[0].MinT == 0 {
		t.Fatalf("early window unexpectedly exact: %+v", samples[0])
	}
	last := samples[len(samples)-1]
	if last.MinT != 0 {
		t.Fatalf("late window MinT = %d, want 0", last.MinT)
	}
	if v := m.Verdict(); v.Trend != TrendStabilized {
		t.Fatalf("trend = %s, want stabilized (samples %+v)", v.Trend, samples)
	}
}

func TestIncrementalNegativeMaxTObserves(t *testing.T) {
	// MaxT < 0 means trend watching only: no window, however bad, stops the
	// monitor.
	obj := spec.NewObject(spec.FetchInc{})
	h := serialCounter(t, 10)
	mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), 10))
	mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), 10))
	m := NewIncremental(obj, IncrementalConfig{Stride: 8, MaxT: -1})
	if v := feedAll(t, m, h); v != nil {
		t.Fatalf("negative-MaxT monitor flagged: %v", v)
	}
	bad := false
	for _, s := range m.Samples() {
		if s.MinT > 0 {
			bad = true
		}
	}
	if !bad {
		t.Fatalf("bad window invisible in samples: %+v", m.Samples())
	}
}

func TestIncrementalNoViolationMode(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := serialCounter(t, 10)
	mustDo(t, h.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), 10))
	mustDo(t, h.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), 10))
	m := NewIncremental(obj, IncrementalConfig{Stride: 8, NoViolation: true})
	if v := feedAll(t, m, h); v != nil {
		t.Fatalf("NoViolation monitor flagged: %v", v)
	}
	// The bad window still shows up in the samples.
	bad := false
	for _, s := range m.Samples() {
		if s.MinT > 0 {
			bad = true
		}
	}
	if !bad {
		t.Fatalf("bad window invisible in samples: %+v", m.Samples())
	}
}

// ----------------------------------------------------------------------------
// Trend classification edge cases (Classify is also the TrackMinT backend).

func TestClassifyEdgeCases(t *testing.T) {
	mk := func(minTs ...int) []Sample {
		s := make([]Sample, len(minTs))
		for i, v := range minTs {
			s[i] = Sample{Events: (i + 1) * 10, MinT: v}
		}
		return s
	}
	cases := []struct {
		name    string
		samples []Sample
		want    Trend
	}{
		{"empty", nil, TrendInconclusive},
		{"single", mk(0), TrendInconclusive},
		{"two", mk(0, 5), TrendInconclusive},
		{"three", mk(1, 1, 1), TrendInconclusive},
		{"plateau", mk(3, 3, 3, 3, 3, 3), TrendStabilized},
		{"growth-then-plateau", mk(1, 4, 9, 9, 9, 9, 9, 9), TrendStabilized},
		{"plateau-then-spike", mk(0, 0, 0, 0, 0, 50), TrendDiverging},
		{"steady-growth", mk(5, 10, 15, 20, 25, 30), TrendDiverging},
		{"spike-then-recover", mk(0, 0, 0, 50, 0, 0), TrendInconclusive},
	}
	for _, tc := range cases {
		got, _ := Classify(tc.samples)
		if got != tc.want {
			t.Errorf("%s: Classify = %s, want %s", tc.name, got, tc.want)
		}
	}
	// Slope sanity: a pure plateau has zero slope, steady growth a positive
	// one.
	if _, slope := Classify(mk(3, 3, 3, 3, 3, 3)); slope != 0 {
		t.Errorf("plateau slope = %v, want 0", slope)
	}
	if _, slope := Classify(mk(5, 10, 15, 20, 25, 30)); slope <= 0 {
		t.Errorf("growth slope = %v, want > 0", slope)
	}
}

// TestIncrementalCrashCutGap is the crash-recovery rebasing case: a run
// crashes at commit K with one operation still in flight (its invocation
// never gets a response — the proc died with it), and the continuation
// resumes the commit order with fresh proc ids. Windows straddling the cut
// must rebase cleanly — the permanently-pending invocation is carried
// forward, completed pre-crash ops fold into the initial state, and no
// false violation is reported at any stride.
func TestIncrementalCrashCutGap(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h := history.New()
	resp := int64(0)
	// Pre-crash: procs 0 and 1 complete 40 ops between them...
	for i := 0; i < 40; i++ {
		mustDo(t, h.Call(i%2, "C", spec.MakeOp(spec.MethodFetchInc), resp))
		resp++
	}
	// ...then proc 1 invokes and the process dies: the op stays pending for
	// the rest of the history (its ticket was lost with the crash).
	mustDo(t, h.Invoke(1, "C", spec.MakeOp(spec.MethodFetchInc)))
	// Post-crash continuation: fresh procs 2 and 3 resume the commit order
	// exactly where the log ended (the lost in-flight op never committed).
	for i := 0; i < 40; i++ {
		mustDo(t, h.Call(2+i%2, "C", spec.MakeOp(spec.MethodFetchInc), resp))
		resp++
	}
	// Strides chosen to place window cuts before, at, and after the crash
	// gap (the pending invocation is event 80).
	for _, stride := range []int{7, 16, 80, 81, 1000} {
		m := NewIncremental(obj, IncrementalConfig{Stride: stride})
		if v := feedAll(t, m, h); v != nil {
			t.Fatalf("stride %d: crash-cut history flagged: %v", stride, v)
		}
		for _, s := range m.Samples() {
			if s.MinT != 0 {
				t.Fatalf("stride %d: window MinT = %d at %d events (false degradation across the cut)",
					stride, s.MinT, s.Events)
			}
		}
	}
	// Fine stride gives enough windows for a trend verdict across the cut.
	m := NewIncremental(obj, IncrementalConfig{Stride: 16})
	if v := feedAll(t, m, h); v != nil {
		t.Fatal(v)
	}
	if v := m.Verdict(); v.Trend != TrendStabilized {
		t.Fatalf("trend across crash cut = %s, want stabilized", v.Trend)
	}
}
