package check

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// feedMon drives any Monitor over a whole history: feed every event (a
// reported violation freezes the monitor, so feeding on is harmless and
// mirrors what a pipelined monitor needs), then Finish. The monitor's final
// accessor state is the result under test.
func feedMon(t *testing.T, m Monitor, h *history.History) {
	t.Helper()
	for i := 0; i < h.Len(); i++ {
		if v, _ := m.Feed(h.Event(i)); v != nil {
			break
		}
	}
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMonitorSpec(t *testing.T) {
	good := []struct {
		in        string
		want      MonitorSpec
		canonical string
	}{
		{"", MonitorSpec{Kind: MonitorFull}, "full"},
		{"full", MonitorSpec{Kind: MonitorFull}, "full"},
		{"sample:2", MonitorSpec{Kind: MonitorSample, N: 2}, "sample:2"},
		{"sample:64", MonitorSpec{Kind: MonitorSample, N: 64}, "sample:64"},
		{"shard:1", MonitorSpec{Kind: MonitorShardWindow, N: 1}, "shard:1"},
		{"shard:8", MonitorSpec{Kind: MonitorShardWindow, N: 8}, "shard:8"},
		{"shard:key", MonitorSpec{Kind: MonitorShardKey}, "shard:key"},
		{"none", MonitorSpec{Kind: MonitorNone}, "none"},
	}
	for _, c := range good {
		ms, err := ParseMonitorSpec(c.in)
		if err != nil {
			t.Errorf("ParseMonitorSpec(%q): %v", c.in, err)
			continue
		}
		if ms != c.want {
			t.Errorf("ParseMonitorSpec(%q) = %+v, want %+v", c.in, ms, c.want)
		}
		if ms.String() != c.canonical {
			t.Errorf("ParseMonitorSpec(%q).String() = %q, want %q", c.in, ms.String(), c.canonical)
		}
		// The canonical spelling parses back to the same spec.
		if back, err := ParseMonitorSpec(ms.String()); err != nil || back != ms {
			t.Errorf("round trip of %q: %+v, %v", ms.String(), back, err)
		}
	}
	for _, in := range []string{"sample:1", "sample:0", "sample:x", "shard:0", "shard:-2", "shard:", "bogus", "full:2", "sample"} {
		if ms, err := ParseMonitorSpec(in); err == nil {
			t.Errorf("ParseMonitorSpec(%q) accepted as %+v", in, ms)
		}
	}
}

func TestNewMonitorKinds(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	cfg := IncrementalConfig{Stride: 16}
	cases := []struct {
		spec string
		is   func(Monitor) bool
	}{
		{"full", func(m Monitor) bool { _, ok := m.(*Incremental); return ok }},
		{"sample:4", func(m Monitor) bool { mm, ok := m.(*Incremental); return ok && mm.SampleEvery() == 4 }},
		{"shard:2", func(m Monitor) bool { _, ok := m.(*ShardedByWindow); return ok }},
		{"shard:key", func(m Monitor) bool { _, ok := m.(*ShardedByKey); return ok }},
		{"none", func(m Monitor) bool { _, ok := m.(*Null); return ok }},
	}
	for _, c := range cases {
		ms, err := ParseMonitorSpec(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMonitor(ms, obj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !c.is(m) {
			t.Errorf("NewMonitor(%q) built %T with wrong shape", c.spec, m)
		}
		m.Abort()
	}
	if _, err := NewMonitor(MonitorSpec{Kind: MonitorShardWindow, N: 0}, obj, cfg); err == nil {
		t.Error("shard:0 monitor constructed")
	}
}

// requireSameOutcome pins a monitor's final state to the sequential
// reference: sample series, check count, verdict, and the violation window.
func requireSameOutcome(t *testing.T, label string, ref *Incremental, m Monitor) {
	t.Helper()
	rs, ms := ref.Samples(), m.Samples()
	if len(rs) != len(ms) {
		t.Fatalf("%s: %d samples, reference has %d", label, len(ms), len(rs))
	}
	for i := range rs {
		if rs[i] != ms[i] {
			t.Fatalf("%s: sample %d = %+v, reference %+v", label, i, ms[i], rs[i])
		}
	}
	if ref.Checks() != m.Checks() {
		t.Errorf("%s: checks = %d, reference %d", label, m.Checks(), ref.Checks())
	}
	rv, mv := ref.Verdict(), m.Verdict()
	if rv.Trend != mv.Trend || rv.FinalMinT != mv.FinalMinT {
		t.Errorf("%s: verdict trend=%s final=%d, reference trend=%s final=%d",
			label, mv.Trend, mv.FinalMinT, rv.Trend, rv.FinalMinT)
	}
	rw, mw := ref.Violation(), m.Violation()
	switch {
	case (rw == nil) != (mw == nil):
		t.Fatalf("%s: violation = %v, reference %v", label, mw, rw)
	case rw != nil:
		if rw.Start != mw.Start || rw.End != mw.End || rw.MinT != mw.MinT {
			t.Errorf("%s: violation window [%d,%d) minT=%d, reference [%d,%d) minT=%d",
				label, mw.Start, mw.End, mw.MinT, rw.Start, rw.End, rw.MinT)
		}
		if rw.Window.String() != mw.Window.String() {
			t.Errorf("%s: violation window text differs:\n%s\nreference:\n%s",
				label, mw.Window, rw.Window)
		}
	}
}

// equivalenceHistories are the fixed workloads every sharded monitor is
// pinned against: clean serial, clean concurrent, tolerated staleness, a
// mid-run duplicate (the junk-counter signature), and a stuck counter.
func equivalenceHistories(t *testing.T) map[string]*history.History {
	t.Helper()
	hs := map[string]*history.History{}

	hs["clean-serial"] = serialCounter(t, 300)

	conc := history.New()
	resp := int64(0)
	for round := 0; round < 80; round++ {
		mustDo(t, conc.Invoke(0, "C", spec.MakeOp(spec.MethodFetchInc)))
		mustDo(t, conc.Invoke(1, "C", spec.MakeOp(spec.MethodFetchInc)))
		mustDo(t, conc.Respond(1, resp))
		mustDo(t, conc.Respond(0, resp+1))
		resp += 2
	}
	hs["clean-concurrent"] = conc

	stale := history.New()
	k := int64(0)
	for round := 0; round < 40; round++ {
		mustDo(t, stale.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), k+1))
		mustDo(t, stale.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), k))
		k += 2
	}
	hs["tolerated-stale"] = stale

	dup := serialCounter(t, 120)
	mustDo(t, dup.Call(0, "C", spec.MakeOp(spec.MethodFetchInc), 120))
	mustDo(t, dup.Call(1, "C", spec.MakeOp(spec.MethodFetchInc), 120))
	for i := int64(121); i < 180; i++ {
		mustDo(t, dup.Call(int(i)%3, "C", spec.MakeOp(spec.MethodFetchInc), i))
	}
	hs["mid-run-duplicate"] = dup

	stuck := history.New()
	for i := int64(0); i < 160; i++ {
		r := i
		if r > 90 {
			r = 90 // the junk counter: increments lost past the stick point
		}
		mustDo(t, stuck.Call(int(i)%4, "C", spec.MakeOp(spec.MethodFetchInc), r))
	}
	hs["stuck-counter"] = stuck

	return hs
}

// The pipelined monitor is pinned to the sequential one: same samples, same
// checks, same verdict, same violation window — for every worker count, on
// clean, tolerated-stale and violating histories alike.
func TestShardedByWindowMatchesSequential(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	cfg := IncrementalConfig{Stride: 16, MaxT: 2}
	for name, h := range equivalenceHistories(t) {
		ref := NewIncremental(obj, cfg)
		feedMon(t, ref, h)
		for _, workers := range []int{1, 2, 4, 8} {
			m, err := NewShardedByWindow(obj, cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			feedMon(t, m, h)
			requireSameOutcome(t, fmt.Sprintf("%s/shard:%d", name, workers), ref, m)
		}
	}
}

// Sampling through the interface: the sharded monitor skips the same
// windows as the sequential monitor when the knob turns at the same event.
func TestShardedByWindowSampling(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	cfg := IncrementalConfig{Stride: 16}
	h := serialCounter(t, 400)
	ref := NewIncremental(obj, cfg)
	m, err := NewShardedByWindow(obj, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.Len(); i++ {
		if i == 5*16 { // degrade mid-run, off a window boundary's phase
			ref.SetSampleEvery(3)
			m.SetSampleEvery(3)
		}
		if _, err := ref.Feed(h.Event(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Feed(h.Event(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	requireSameOutcome(t, "sampled", ref, m)
	if ref.SkippedWindows() != m.SkippedWindows() {
		t.Errorf("skipped = %d, reference %d", m.SkippedWindows(), ref.SkippedWindows())
	}
	if m.MaxSampleEvery() != 3 {
		t.Errorf("MaxSampleEvery = %d, want 3", m.MaxSampleEvery())
	}
}

// Abort mid-stream releases the pool without a tail check and is idempotent
// alongside Finish.
func TestShardedByWindowAbort(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	m, err := NewShardedByWindow(obj, IncrementalConfig{Stride: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := serialCounter(t, 30)
	for i := 0; i < 20; i++ {
		if _, err := m.Feed(h.Event(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Abort()
	m.Abort()
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Feed(h.Event(20)); v != nil {
		t.Fatal("aborted monitor reported a violation")
	}
}

// ShardedByKey: per-key subhistories check independently; a clean multi-key
// run composes clean, a violation in one key surfaces globally.
func TestShardedByKey(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	cfg := IncrementalConfig{Stride: 8, MaxT: 1}

	clean := history.New()
	a, b := int64(0), int64(0)
	for i := 0; i < 120; i++ {
		mustDo(t, clean.Call(0, "A", spec.MakeOp(spec.MethodFetchInc), a))
		a++
		mustDo(t, clean.Call(1, "B", spec.MakeOp(spec.MethodFetchInc), b))
		b++
	}
	m := NewShardedByKey(obj, cfg)
	feedMon(t, m, clean)
	if v := m.Violation(); v != nil {
		t.Fatalf("clean multi-key run flagged: %v", v)
	}
	if v := m.Verdict(); v.Trend != TrendStabilized || v.FinalMinT != 0 {
		t.Fatalf("verdict = %+v, want stabilized final 0", v)
	}
	if m.Events() != clean.Len() {
		t.Fatalf("events = %d, want %d", m.Events(), clean.Len())
	}
	if m.Checks() < 10 {
		t.Fatalf("checks = %d, want per-key windows on both keys", m.Checks())
	}

	bad := history.New()
	a, b = 0, 0
	for i := 0; i < 60; i++ {
		mustDo(t, bad.Call(0, "A", spec.MakeOp(spec.MethodFetchInc), a))
		a++
		r := b
		if i >= 30 {
			r = 30 // key B's counter sticks; key A stays clean
		} else {
			b++
		}
		mustDo(t, bad.Call(1, "B", spec.MakeOp(spec.MethodFetchInc), r))
	}
	m = NewShardedByKey(obj, cfg)
	feedMon(t, m, bad)
	v := m.Violation()
	if v == nil {
		t.Fatal("stuck key escaped the per-key monitor")
	}
	for i := 0; i < v.Window.Len(); i++ {
		if o := v.Window.Event(i).Obj; o != "B" {
			t.Fatalf("violation window names key %q, want B only:\n%s", o, v.Window)
		}
	}
}

func TestNullMonitor(t *testing.T) {
	m := NewNull()
	h := serialCounter(t, 20)
	feedMon(t, m, h)
	if m.Events() != h.Len() {
		t.Fatalf("events = %d, want %d", m.Events(), h.Len())
	}
	if m.Checks() != 0 || len(m.Samples()) != 0 || m.Violation() != nil {
		t.Fatal("record-only monitor checked something")
	}
	if v := m.Verdict(); v.Trend != TrendInconclusive {
		t.Fatalf("trend = %s, want inconclusive", v.Trend)
	}
	m.SetSampleEvery(8)
	if m.SampleEvery() != 1 || m.MaxSampleEvery() != 0 {
		t.Fatal("record-only monitor took a sampling knob")
	}
}

// Property: on any seeded single-key history — serial increments with
// bounded staleness swaps and an optional junk-counter stick — the
// pipelined monitor's outcome is the sequential monitor's, for a
// seed-derived worker count.
func TestShardedByWindowEquivalenceQuick(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := history.New()
		n := 100 + rng.Intn(300)
		stick := int64(-1)
		if rng.Intn(2) == 0 { // half the runs exercise the violation path
			stick = int64(20 + rng.Intn(n-20))
		}
		k := int64(0)
		emit := func(r int64) {
			mustDo(t, h.Call(rng.Intn(4), "C", spec.MakeOp(spec.MethodFetchInc), r))
		}
		for i := 0; i < n; i++ {
			r := k
			if stick >= 0 && k >= stick {
				r = stick // lost increments: the junk-counter signature
			}
			k++
			if rng.Intn(8) == 0 && i+1 < n {
				// Adjacent swap: tolerated staleness of 2.
				r2 := k
				if stick >= 0 && k >= stick {
					r2 = stick
				}
				k++
				i++
				emit(r2)
				emit(r)
				continue
			}
			emit(r)
		}
		cfg := IncrementalConfig{Stride: 8 + rng.Intn(24), MaxT: 2}
		ref := NewIncremental(obj, cfg)
		feedMon(t, ref, h)
		m, err := NewShardedByWindow(obj, cfg, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		feedMon(t, m, h)
		rv, mv := ref.Verdict(), m.Verdict()
		if rv.Trend != mv.Trend || rv.FinalMinT != mv.FinalMinT || ref.Checks() != m.Checks() {
			return false
		}
		rw, mw := ref.Violation(), m.Violation()
		if (rw == nil) != (mw == nil) {
			return false
		}
		if rw != nil && (rw.Start != mw.Start || rw.End != mw.End || rw.MinT != mw.MinT) {
			return false
		}
		return len(ref.Samples()) == len(m.Samples())
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
