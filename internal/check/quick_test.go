package check

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/gen"
	"github.com/elin-go/elin/internal/spec"
)

// Property: MinT is monotone under prefixes (a consequence of Lemma 6): a
// prefix never needs a larger cut than the full history.
func TestQuickMinTPrefixMonotone(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.FetchInc(r, gen.HistoryConfig{Procs: 3, Ops: 10, Corrupt: 0.4, PendingBias: 0.2})
		full, ok, err := MinT(obj, h, Options{})
		if err != nil || !ok {
			return false
		}
		for k := 0; k <= h.Len(); k += 3 {
			pre, ok, err := MinT(obj, h.Prefix(k), Options{})
			if err != nil || !ok {
				return false
			}
			if pre > full {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a history is 0-linearizable iff MinT is 0.
func TestQuickMinTZeroIffLinearizable(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.FetchInc(r, gen.HistoryConfig{Procs: 2, Ops: 8, Corrupt: 0.3})
		lin, err := TLinearizable(obj, h, 0, Options{})
		if err != nil {
			return false
		}
		mt, ok, err := MinT(obj, h, Options{})
		if err != nil || !ok {
			return false
		}
		return lin == (mt == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: weak consistency is implied by linearizability (a legal
// 0-linearization restricted appropriately witnesses Definition 1).
func TestQuickLinearizableImpliesWeaklyConsistent(t *testing.T) {
	objs := map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.Register(r, gen.HistoryConfig{Procs: 3, Ops: 8, Corrupt: 0.3})
		lin, err := Linearizable(objs, h, Options{})
		if err != nil {
			return false
		}
		if !lin {
			return true // implication vacuous
		}
		wc, err := WeaklyConsistent(objs, h, Options{})
		if err != nil {
			return false
		}
		return wc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: exact multi-object MinT never exceeds the Lemma 7 lift, and
// the lift is itself sufficient.
func TestQuickMinTMultiBelowLift(t *testing.T) {
	objs := map[string]spec.Object{
		"X": spec.NewObject(spec.Register{}),
		"Y": spec.NewObject(spec.FetchInc{}),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomTwoObjectHistory(r, 3, 6, 0.3)
		exact, ok, err := MinTMulti(objs, h, Options{})
		if err != nil || !ok {
			return false
		}
		lift, err := MinTGlobalUpper(objs, h, Options{})
		if err != nil {
			return false
		}
		return exact <= lift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every response enumerated by WeakResponses is accepted by the
// weak-consistency checker once appended, and every other small value is
// rejected (soundness and completeness of the candidate set).
func TestQuickWeakResponsesExact(t *testing.T) {
	obj := spec.NewObject(spec.Register{})
	objs := map[string]spec.Object{"X": obj}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.Register(r, gen.HistoryConfig{Procs: 3, Ops: 6})
		// Append a fresh pending read by a new process.
		if err := h.Invoke(3, "X", spec.MakeOp(spec.MethodRead)); err != nil {
			return false
		}
		cands, err := WeakResponses(obj, h, 3, Options{})
		if err != nil {
			return false
		}
		inCands := make(map[int64]bool, len(cands))
		for _, c := range cands {
			inCands[c] = true
		}
		for v := int64(-1); v <= 5; v++ {
			probe := h.Clone()
			if err := probe.Respond(3, v); err != nil {
				return false
			}
			wc, err := WeaklyConsistent(objs, probe, Options{})
			if err != nil {
				return false
			}
			if wc != inCands[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: NoMemo changes performance, never answers.
func TestQuickMemoAblationSameAnswers(t *testing.T) {
	objs := map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.Register(r, gen.HistoryConfig{Procs: 3, Ops: 6, Corrupt: 0.4})
		a, err := Linearizable(objs, h, Options{})
		if err != nil {
			return false
		}
		b, err := Linearizable(objs, h, Options{NoMemo: true})
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
