package check

import (
	"github.com/elin-go/elin/internal/spec"
)

// SequentialWitness reports whether there is a legal sequential execution,
// from obj's initial state, that consists of all operations in must, any
// subset of opt, and ends with final returning resp. This is exactly the
// test on line 13 of Figure 1 (the announce/verify wrapper of
// Proposition 11): must is the verifier's own announced operations, opt the
// operations announced by others, final the operation being completed.
func SequentialWitness(obj spec.Object, must, opt []spec.Op, final spec.Op, resp int64, opts Options) (bool, error) {
	if !opts.NoFastPath {
		if _, ok := obj.Type.(spec.FetchInc); ok {
			return fetchIncWitness(obj, must, opt, final, resp)
		}
	}
	if len(must)+len(opt) > MaxOpsPerObject {
		return false, ErrTooLarge
	}
	w := &witnessSearch{
		typ:      obj.Type,
		must:     must,
		opt:      opt,
		mustMask: uint64(1)<<uint(len(must)) - 1,
		final:    final,
		resp:     resp,
		budget:   opts.budget(),
		memo:     make(map[memoKey]struct{}),
	}
	return w.dfs(obj.Init, 0)
}

// fetchIncWitness: all operations are fetch&incs, so only counts matter:
// the final op returns r iff exactly r - init operations precede it, which
// requires len(must) <= r - init <= len(must) + len(opt).
func fetchIncWitness(obj spec.Object, must, opt []spec.Op, final spec.Op, resp int64) (bool, error) {
	init, ok := obj.Init.(int64)
	if !ok {
		return false, nil
	}
	if final.Method != spec.MethodFetchInc {
		return false, nil
	}
	for _, op := range append(append([]spec.Op{}, must...), opt...) {
		if op.Method != spec.MethodFetchInc {
			return false, nil
		}
	}
	d := resp - init
	return d >= int64(len(must)) && d <= int64(len(must)+len(opt)), nil
}

type witnessSearch struct {
	typ      spec.Type
	must     []spec.Op
	opt      []spec.Op
	mustMask uint64
	final    spec.Op
	resp     int64
	budget   int64
	memo     map[memoKey]struct{}
}

func (w *witnessSearch) dfs(state spec.State, used uint64) (bool, error) {
	w.budget--
	if w.budget < 0 {
		return false, ErrBudget
	}
	key := memoKey{mask: used, state: state}
	if _, seen := w.memo[key]; seen {
		return false, nil
	}
	if used&w.mustMask == w.mustMask {
		for _, out := range w.typ.Step(state, w.final) {
			if out.Resp == w.resp {
				return true, nil
			}
		}
	}
	total := len(w.must) + len(w.opt)
	for i := 0; i < total; i++ {
		bit := uint64(1) << uint(i)
		if used&bit != 0 {
			continue
		}
		var op spec.Op
		if i < len(w.must) {
			op = w.must[i]
		} else {
			op = w.opt[i-len(w.must)]
		}
		for _, out := range w.typ.Step(state, op) {
			ok, err := w.dfs(out.Next, used|bit)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	w.memo[key] = struct{}{}
	return false, nil
}
