package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// ringCap is the per-worker dispatch ring capacity (tasks). Small on
// purpose: each task pins a full window of events, so the ring bounds how
// far checking may lag recording before backpressure kicks in.
const ringCap = 8

// windowTask is one closed window handed to a worker. The dispatcher folds
// the window's completed operations into the rebased state BEFORE pushing,
// after which the task's window and object belong exclusively to the worker
// until done is published — no clone, no lock.
type windowTask struct {
	// start and end are the global event indexes the window covers
	// ([start, end)); end is also the event count the sample is keyed by.
	start, end int
	win        *history.History
	obj        spec.Object

	minT int
	ok   bool
	err  error
	done atomic.Bool
}

// taskRing is a bounded single-producer single-consumer ring: the
// dispatching goroutine pushes, exactly one worker pops. Lock-free — the
// producer publishes a slot by advancing tail, the consumer releases it by
// advancing head, and a full ring spins the producer (backpressure) instead
// of dropping or growing.
type taskRing struct {
	buf  []*windowTask
	mask uint64
	head atomic.Uint64 // consumer cursor
	tail atomic.Uint64 // producer cursor
	// wake parks the idle consumer: every push deposits a token (capacity 1,
	// non-blocking), the worker blocks on it after finding the ring empty.
	// Spurious tokens cost one extra pop attempt; a busy-spinning idle worker
	// would cost the whole core the clients are trying to run on.
	wake chan struct{}
}

func newTaskRing() *taskRing {
	return &taskRing{
		buf:  make([]*windowTask, ringCap),
		mask: ringCap - 1,
		wake: make(chan struct{}, 1),
	}
}

// push enqueues t, spinning while the ring is full. Returns false only when
// stopped is raised mid-spin (violation or abort tearing the pool down).
func (r *taskRing) push(t *windowTask, stopped *atomic.Bool) bool {
	for {
		tail := r.tail.Load()
		if tail-r.head.Load() < uint64(len(r.buf)) {
			r.buf[tail&r.mask] = t
			r.tail.Store(tail + 1)
			select {
			case r.wake <- struct{}{}:
			default:
			}
			return true
		}
		if stopped.Load() {
			return false
		}
		runtime.Gosched()
	}
}

// pop dequeues the next task, or nil when the ring is empty.
func (r *taskRing) pop() *windowTask {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	t := r.buf[head&r.mask]
	r.buf[head&r.mask] = nil
	r.head.Store(head + 1)
	return t
}

// ShardedByWindow is the pipelined window monitor: the same windowed
// t-linearizability check as Incremental, with the MinT searches fanned out
// to a fixed worker pool so checking overlaps recording instead of
// serializing behind it. The Feed goroutine only appends events, folds the
// rebase at each cut, and round-robins closed windows onto per-worker
// dispatch rings; workers run the MinT searches concurrently; a collector
// (run opportunistically from Feed, exhaustively from Finish) consumes
// results strictly in window order.
//
// Because the rebase fold stays on the Feed goroutine (windows are
// sharded, the state handoff between them is not), and results are
// collected in dispatch order, the sample series, verdict, violation
// window and check count are identical to the sequential monitor's on the
// same event sequence. Two things may differ: Events() can run past a
// violating window before the violation is collected (the detection lag of
// pipelining — Feed reports the violation a few events later than the
// sequential monitor would), and under sampling an escalation takes effect
// only when the triggering window's result is collected, so the skip
// pattern near an escalation can lag the sequential monitor's by the
// pipeline depth.
type ShardedByWindow struct {
	cfg IncrementalConfig

	obj spec.Object
	det spec.DetStepper

	win    *history.History
	start  int
	events int

	workers int
	rings   []*taskRing
	next    int // round-robin dispatch cursor
	// pending holds dispatched, uncollected tasks in window order; the
	// in-order collector is what pins the sharded verdict to the
	// sequential one.
	pending []*windowTask

	stopped  atomic.Bool
	done     chan struct{} // closed by shutdown to unpark idle workers
	wg       sync.WaitGroup
	finished bool

	samples   []Sample
	violation *WindowViolation
	checks    int

	sampleEvery    int
	skipLeft       int
	winCount       int
	skipped        int
	escalations    int
	maxSampleEvery int
}

// NewShardedByWindow returns a pipelined window monitor running its MinT
// searches on `workers` goroutines.
func NewShardedByWindow(obj spec.Object, cfg IncrementalConfig, workers int) (*ShardedByWindow, error) {
	if workers < 1 {
		return nil, fmt.Errorf("check: sharded monitor needs >= 1 worker, got %d", workers)
	}
	s := &ShardedByWindow{
		cfg:     cfg,
		obj:     obj,
		win:     history.New(),
		workers: workers,
		rings:   make([]*taskRing, workers),
		done:    make(chan struct{}),
	}
	s.det, _ = obj.Type.(spec.DetStepper)
	for i := range s.rings {
		s.rings[i] = newTaskRing()
		s.wg.Add(1)
		go s.worker(s.rings[i])
	}
	return s, nil
}

// worker drains one ring, publishing each task's MinT result through its
// done flag. An empty ring parks the worker on its wake channel rather than
// spinning — idle workers must not steal cycles from the goroutines
// generating the events.
func (s *ShardedByWindow) worker(r *taskRing) {
	defer s.wg.Done()
	for {
		if s.stopped.Load() {
			return
		}
		t := r.pop()
		if t == nil {
			select {
			case <-r.wake:
			case <-s.done:
				return
			}
			continue
		}
		t.minT, t.ok, t.err = MinT(t.obj, t.win, s.cfg.Opts)
		t.done.Store(true)
	}
}

// Feed implements Monitor. A violation raised by an earlier window is
// returned as soon as its result has been collected; that may be a few
// events after the sequential monitor would have reported it.
func (s *ShardedByWindow) Feed(e history.Event) (*WindowViolation, error) {
	if s.violation != nil {
		return s.violation, nil
	}
	if s.finished {
		return nil, fmt.Errorf("check: sharded feed after finish")
	}
	if err := s.win.Append(e); err != nil {
		return nil, fmt.Errorf("check: sharded feed: %w", err)
	}
	s.events++
	if s.win.Len() >= s.cfg.stride() {
		if v, err := s.closeWindow(false); v != nil || err != nil {
			if err != nil {
				s.shutdown()
			}
			return v, err
		}
	}
	v, err := s.drain(false)
	if err != nil {
		s.shutdown()
	}
	return v, err
}

// closeWindow dispatches the current window (or skips it under sampling)
// and advances the cut.
func (s *ShardedByWindow) closeWindow(force bool) (*WindowViolation, error) {
	s.winCount++
	if !force && s.skipLeft > 0 {
		s.skipLeft--
		s.skipped++
		return nil, s.advance()
	}
	if s.sampleEvery > 1 {
		s.skipLeft = s.sampleEvery - 1
	}
	t := &windowTask{start: s.start, end: s.events, win: s.win, obj: s.obj}
	// Fold before dispatch: advance reads s.win (the task's window) one last
	// time on this goroutine; after the push below only the worker touches
	// it.
	if err := s.advance(); err != nil {
		return nil, err
	}
	s.pending = append(s.pending, t)
	if !s.rings[s.next].push(t, &s.stopped) {
		return s.violation, nil
	}
	s.next = (s.next + 1) % s.workers
	return nil, nil
}

// advance rebases the state past the current window and starts the next one
// with the still-open operations.
func (s *ShardedByWindow) advance() error {
	obj, next, err := rebaseFold(s.obj, s.det, s.win)
	if err != nil {
		return err
	}
	s.obj = obj
	s.start = s.events
	s.win = next
	return nil
}

// drain collects finished results in window order. With wait=false it stops
// at the first unfinished task (the Feed fast path); with wait=true it
// spins until every pending task has been collected.
func (s *ShardedByWindow) drain(wait bool) (*WindowViolation, error) {
	for len(s.pending) > 0 {
		t := s.pending[0]
		if !t.done.Load() {
			if !wait {
				return nil, nil
			}
			runtime.Gosched()
			continue
		}
		s.pending = s.pending[1:]
		if v, err := s.collect(t); v != nil || err != nil {
			return v, err
		}
	}
	return nil, nil
}

// collect applies one window result exactly as the sequential closeWindow
// would: count the check, append the sample, raise the violation, or note a
// near-violation escalation.
func (s *ShardedByWindow) collect(t *windowTask) (*WindowViolation, error) {
	if t.err != nil {
		return nil, fmt.Errorf("check: sharded window [%d,%d): %w", t.start, t.end, t.err)
	}
	s.checks++
	mt := t.minT
	if !t.ok {
		mt = -1
	}
	s.samples = append(s.samples, Sample{Events: t.end, MinT: mt})
	if !s.cfg.NoViolation && s.cfg.MaxT >= 0 && (mt < 0 || mt > s.cfg.MaxT) {
		s.violation = &WindowViolation{
			Start:  t.start,
			End:    t.end,
			Window: t.win,
			Object: t.obj,
			MinT:   mt,
			MaxT:   s.cfg.MaxT,
		}
		// Freeze: discard the windows dispatched after the violating one
		// (the sequential monitor never checks them) and stop the pool.
		s.shutdown()
		return s.violation, nil
	}
	if s.sampleEvery > 1 && !s.cfg.NoViolation && s.cfg.MaxT > 0 && 2*mt > s.cfg.MaxT {
		s.sampleEvery = 1
		s.skipLeft = 0
		s.escalations++
	}
	return nil, nil
}

// Finish implements Monitor: dispatch the tail window, collect every
// pending result in order, and stop the pool.
func (s *ShardedByWindow) Finish() (*WindowViolation, error) {
	if s.violation != nil || s.finished {
		s.shutdown()
		return s.violation, nil
	}
	if s.win.Len() > 0 {
		if v, err := s.closeWindow(true); v != nil || err != nil {
			s.shutdown()
			return v, err
		}
	}
	v, err := s.drain(true)
	s.shutdown()
	return v, err
}

// Abort implements Monitor: stop the pool and discard pending results
// without measuring the tail. Idempotent; a no-op after Finish.
func (s *ShardedByWindow) Abort() { s.shutdown() }

// shutdown stops the workers, waits them out, and drops uncollected tasks.
func (s *ShardedByWindow) shutdown() {
	if s.finished {
		return
	}
	s.finished = true
	s.stopped.Store(true)
	close(s.done)
	s.wg.Wait()
	s.pending = nil
}

// Events implements Monitor.
func (s *ShardedByWindow) Events() int { return s.events }

// Checks implements Monitor (collected windows only, so it matches the
// sequential monitor even when discarded in-flight work was measured).
func (s *ShardedByWindow) Checks() int { return s.checks }

// Samples implements Monitor. The slice is live; callers must not mutate
// it.
func (s *ShardedByWindow) Samples() []Sample { return s.samples }

// Violation implements Monitor.
func (s *ShardedByWindow) Violation() *WindowViolation { return s.violation }

// Verdict implements Monitor.
func (s *ShardedByWindow) Verdict() Verdict {
	v := Verdict{Samples: s.samples}
	if len(s.samples) > 0 {
		v.FinalMinT = s.samples[len(s.samples)-1].MinT
	}
	v.Trend, v.Slope = Classify(s.samples)
	return v
}

// SetSampleEvery implements Monitor (same countdown semantics as the
// sequential monitor; the skip decision is taken at dispatch time).
func (s *ShardedByWindow) SetSampleEvery(n int) {
	if n < 1 {
		n = 1
	}
	s.sampleEvery = n
	s.skipLeft = n - 1
	if n > s.maxSampleEvery {
		s.maxSampleEvery = n
	}
}

// SampleEvery implements Monitor.
func (s *ShardedByWindow) SampleEvery() int {
	if s.sampleEvery < 1 {
		return 1
	}
	return s.sampleEvery
}

// SkippedWindows implements Monitor.
func (s *ShardedByWindow) SkippedWindows() int { return s.skipped }

// Escalations implements Monitor.
func (s *ShardedByWindow) Escalations() int { return s.escalations }

// MaxSampleEvery implements Monitor.
func (s *ShardedByWindow) MaxSampleEvery() int { return s.maxSampleEvery }

// ShardedByKey partitions a multi-key history into one sequential
// sub-monitor per object key. Each key's subhistory is windowed and checked
// independently; the composed verdict merges the per-key samples in global
// feed order and takes the max of the per-key final MinT values.
//
// This is the empirical compositionality probe: linearizability composes
// (a history is linearizable iff each per-object subhistory is), so for
// tolerance 0 the per-key verdicts are exactly the global one. Whether
// t-linearizability composes the same way for t > 0 is an open question —
// running shard:key next to a global monitor on the same multi-object run
// is how this harness asks it.
type ShardedByKey struct {
	cfg IncrementalConfig
	obj spec.Object

	subs map[string]*Incremental
	keys []string // creation order, for deterministic iteration

	events    int
	samples   []Sample
	violation *WindowViolation
	finished  bool

	sampleEvery int
}

// NewShardedByKey returns a per-key composed monitor. Every key is checked
// against the same object specification (multi-key workloads in this
// harness are homogeneous).
func NewShardedByKey(obj spec.Object, cfg IncrementalConfig) *ShardedByKey {
	return &ShardedByKey{
		cfg:         cfg,
		obj:         obj,
		subs:        make(map[string]*Incremental),
		sampleEvery: 1,
	}
}

// Feed implements Monitor: route the event to its key's sub-monitor and
// restamp any sample it produced with the global event count.
func (s *ShardedByKey) Feed(e history.Event) (*WindowViolation, error) {
	if s.violation != nil {
		return s.violation, nil
	}
	sub, ok := s.subs[e.Obj]
	if !ok {
		sub = NewIncremental(s.obj, s.cfg)
		if s.sampleEvery > 1 {
			sub.SetSampleEvery(s.sampleEvery)
		}
		s.subs[e.Obj] = sub
		s.keys = append(s.keys, e.Obj)
	}
	before := len(sub.Samples())
	v, err := sub.Feed(e)
	s.events++
	if err != nil {
		return nil, err
	}
	s.mergeSamples(sub, before)
	if v != nil {
		s.violation = v
		return v, nil
	}
	return nil, nil
}

// mergeSamples restamps sub's new samples (from index `from`) with the
// global event count and appends them to the composed series.
func (s *ShardedByKey) mergeSamples(sub *Incremental, from int) {
	for _, smp := range sub.Samples()[from:] {
		s.samples = append(s.samples, Sample{Events: s.events, MinT: smp.MinT})
	}
}

// Finish implements Monitor: finish every sub-monitor in key order; the
// first tail violation wins.
func (s *ShardedByKey) Finish() (*WindowViolation, error) {
	if s.violation != nil || s.finished {
		return s.violation, nil
	}
	s.finished = true
	for _, k := range s.keys {
		sub := s.subs[k]
		before := len(sub.Samples())
		v, err := sub.Finish()
		if err != nil {
			return nil, err
		}
		s.mergeSamples(sub, before)
		if v != nil && s.violation == nil {
			s.violation = v
		}
	}
	return s.violation, nil
}

// Abort implements Monitor (sub-monitors hold no resources).
func (s *ShardedByKey) Abort() { s.finished = true }

// Events implements Monitor.
func (s *ShardedByKey) Events() int { return s.events }

// Checks implements Monitor (sum over keys).
func (s *ShardedByKey) Checks() int {
	n := 0
	for _, k := range s.keys {
		n += s.subs[k].Checks()
	}
	return n
}

// Samples implements Monitor: the per-key samples merged in global feed
// order, each stamped with the global event count at which it was taken.
func (s *ShardedByKey) Samples() []Sample { return s.samples }

// Violation implements Monitor.
func (s *ShardedByKey) Violation() *WindowViolation { return s.violation }

// Verdict implements Monitor: the trend of the merged series, with
// FinalMinT the max of the per-key final MinT values — the composed bound
// the compositionality question is about.
func (s *ShardedByKey) Verdict() Verdict {
	v := Verdict{Samples: s.samples}
	for _, k := range s.keys {
		sub := s.subs[k].Samples()
		if len(sub) > 0 && sub[len(sub)-1].MinT > v.FinalMinT {
			v.FinalMinT = sub[len(sub)-1].MinT
		}
	}
	v.Trend, v.Slope = Classify(s.samples)
	return v
}

// SetSampleEvery implements Monitor (applied to every sub-monitor, current
// and future).
func (s *ShardedByKey) SetSampleEvery(n int) {
	if n < 1 {
		n = 1
	}
	s.sampleEvery = n
	for _, k := range s.keys {
		s.subs[k].SetSampleEvery(n)
	}
}

// SampleEvery implements Monitor.
func (s *ShardedByKey) SampleEvery() int { return s.sampleEvery }

// SkippedWindows implements Monitor (sum over keys).
func (s *ShardedByKey) SkippedWindows() int {
	n := 0
	for _, k := range s.keys {
		n += s.subs[k].SkippedWindows()
	}
	return n
}

// Escalations implements Monitor (sum over keys).
func (s *ShardedByKey) Escalations() int {
	n := 0
	for _, k := range s.keys {
		n += s.subs[k].Escalations()
	}
	return n
}

// MaxSampleEvery implements Monitor (max over keys).
func (s *ShardedByKey) MaxSampleEvery() int {
	n := 0
	for _, k := range s.keys {
		if m := s.subs[k].MaxSampleEvery(); m > n {
			n = m
		}
	}
	return n
}

var (
	_ Monitor = (*Incremental)(nil)
	_ Monitor = (*ShardedByWindow)(nil)
	_ Monitor = (*ShardedByKey)(nil)
	_ Monitor = (*Null)(nil)
)
