package check

import (
	"fmt"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// Sample records the minimum t making a prefix of a history t-linearizable.
type Sample struct {
	// Events is the prefix length (number of events).
	Events int
	// MinT is the least t for which the prefix is t-linearizable.
	MinT int
}

// Trend classifies the growth of MinT across prefixes.
type Trend int

// Trend values.
const (
	// TrendStabilized: MinT is constant over the tail of the run — the
	// behaviour expected of an eventually linearizable implementation once
	// its executions stabilize (Definition 4).
	TrendStabilized Trend = iota + 1
	// TrendDiverging: MinT keeps growing with the run — the finite-data
	// signature of a history family that is not t-linearizable for any
	// fixed t (e.g. Corollary 19 witnesses).
	TrendDiverging
	// TrendInconclusive: too few samples or mixed behaviour.
	TrendInconclusive
)

// String implements fmt.Stringer.
func (tr Trend) String() string {
	switch tr {
	case TrendStabilized:
		return "stabilized"
	case TrendDiverging:
		return "diverging"
	case TrendInconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("trend(%d)", int(tr))
	}
}

// Verdict summarizes a TrackMinT run.
type Verdict struct {
	// Samples are the (prefix length, MinT) measurements.
	Samples []Sample
	// FinalMinT is the MinT of the full history.
	FinalMinT int
	// Slope is the least-squares slope of MinT against prefix length over
	// the second half of the samples (events^-1 units).
	Slope float64
	// Trend is the classification.
	Trend Trend
}

// TrackMinT measures MinT on prefixes of the single-object history h at
// every stride events, classifying the growth trend. Infinite histories
// cannot be checked directly, so this is the paper-faithful finite
// instrument: Definitions 3/4 quantify over infinite histories, and by
// Lemma 5/6 a history family is eventually linearizable exactly when MinT
// of its prefixes is eventually constant.
func TrackMinT(obj spec.Object, h *history.History, stride int, opts Options) (Verdict, error) {
	if stride <= 0 {
		stride = 1
	}
	var v Verdict
	for k := stride; ; k += stride {
		last := k >= h.Len()
		if last {
			k = h.Len()
		}
		t, ok, err := MinT(obj, h.Prefix(k), opts)
		if err != nil {
			return Verdict{}, fmt.Errorf("prefix %d: %w", k, err)
		}
		if !ok {
			return Verdict{}, fmt.Errorf("prefix %d: not t-linearizable for any t", k)
		}
		v.Samples = append(v.Samples, Sample{Events: k, MinT: t})
		if last {
			break
		}
	}
	v.FinalMinT = v.Samples[len(v.Samples)-1].MinT
	v.Trend, v.Slope = Classify(v.Samples)
	return v, nil
}

// Classify labels the growth trend of a MinT sample series and returns the
// least-squares slope its label is based on. It is the classification shared
// by TrackMinT (post-hoc prefixes) and Incremental (live windows); callers
// with their own sampling loops can feed it directly. Fewer than four
// samples are always inconclusive.
func Classify(samples []Sample) (Trend, float64) {
	slope := tailSlope(samples)
	return classify(samples, slope), slope
}

// tailSlope fits MinT = a + b*Events over the second half of the samples
// and returns b.
func tailSlope(samples []Sample) float64 {
	tail := samples[len(samples)/2:]
	if len(tail) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, s := range tail {
		x, y := float64(s.Events), float64(s.MinT)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(tail))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// classify labels the trend: constant MinT over the tail is stabilized;
// persistent growth (slope above 2% of an event per event, and a new
// maximum in the final sample) is diverging.
func classify(samples []Sample, slope float64) Trend {
	if len(samples) < 4 {
		return TrendInconclusive
	}
	tail := samples[len(samples)/2:]
	minT, maxT := tail[0].MinT, tail[0].MinT
	for _, s := range tail {
		if s.MinT < minT {
			minT = s.MinT
		}
		if s.MinT > maxT {
			maxT = s.MinT
		}
	}
	if minT == maxT {
		return TrendStabilized
	}
	last := samples[len(samples)-1]
	if slope > 0.02 && last.MinT == maxT {
		return TrendDiverging
	}
	return TrendInconclusive
}
