package check

import (
	"math/rand"
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

var (
	prop  = func(v int64) spec.Op { return spec.MakeOp1(spec.MethodPropose, v) }
	consX = map[string]spec.Object{"X": spec.NewObject(spec.Consensus{})}
)

func TestConsensusLinearizableBasics(t *testing.T) {
	// Sequential agreement: linearizable.
	h := build(t).
		call(0, "X", prop(5), 5).
		call(1, "X", prop(9), 5).h
	ok, err := Linearizable(consX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("agreeing history: %v %v", ok, err)
	}

	// Sequential disagreement: not linearizable, but 2-linearizable (the
	// first response moves into the prefix and is reassigned).
	bad := build(t).
		call(0, "X", prop(5), 5).
		call(1, "X", prop(9), 9).h
	ok, err = Linearizable(consX, bad, Options{})
	if err != nil || ok {
		t.Fatalf("disagreeing history linearizable: %v %v", ok, err)
	}
	ok, err = TLinearizable(consX["X"], bad, 2, Options{})
	if err != nil || !ok {
		t.Fatalf("disagreeing history not 2-linearizable: %v %v", ok, err)
	}

	// Deciding a never-proposed value is out of the question even after
	// any cut (no leader proposes it).
	ghost := build(t).
		call(0, "X", prop(5), 7).h
	ok, err = TLinearizable(consX["X"], ghost, 0, Options{})
	if err != nil || ok {
		t.Fatalf("ghost decision accepted: %v %v", ok, err)
	}
}

func TestConsensusLeaderRealTime(t *testing.T) {
	// p1 proposes 9 only AFTER p0's propose(5) returned 5... and a later
	// op answers 9 in the suffix: the leader proposing 9 was invoked after
	// the suffix-answered response of p0's op, so ordering 9 first
	// violates real time -> not 0-linearizable.
	h := build(t).
		call(0, "X", prop(5), 5).  // events 0,1 (suffix at t=0)
		call(1, "X", prop(9), 9).h // events 2,3: disagreement
	ok, err := TLinearizable(consX["X"], h, 0, Options{})
	if err != nil || ok {
		t.Fatalf("real-time violating leader accepted: %v %v", ok, err)
	}
	// With t=2 (p0's response freed), p1's 9 can lead and p0's response is
	// reassigned to 9.
	ok, err = TLinearizable(consX["X"], h, 2, Options{})
	if err != nil || !ok {
		t.Fatalf("t=2 should fix it: %v %v", ok, err)
	}
}

func TestConsensusConcurrentLeader(t *testing.T) {
	// Overlapping proposes may decide either value.
	h := build(t).
		inv(0, "X", prop(5)).
		inv(1, "X", prop(9)).
		res(0, 9).
		res(1, 9).h
	ok, err := Linearizable(consX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("concurrent decision: %v %v", ok, err)
	}
}

func TestConsensusFastPathAgreesWithGenericEngine(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	checked := 0
	for trial := 0; trial < 100; trial++ {
		h := randomConsensusHistory(r, 3, 7, 0.4)
		for tt := 0; tt <= h.Len(); tt++ {
			fast, err := consensusTLinearizable(consX["X"], h, tt)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := TLinearizable(consX["X"], h, tt, Options{NoFastPath: true})
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Fatalf("trial %d t=%d: fast=%v generic=%v\n%s", trial, tt, fast, slow, h)
			}
			checked++
		}
	}
	if checked < 500 {
		t.Fatalf("only %d cases checked", checked)
	}
}

func TestConsensusPreDecided(t *testing.T) {
	obj := spec.Object{Type: spec.Consensus{}, Init: int64(4)}
	h := build(t).
		call(0, "X", prop(9), 4).
		call(1, "X", prop(1), 4).h
	ok, err := TLinearizable(obj, h, 0, Options{})
	if err != nil || !ok {
		t.Fatalf("pre-decided: %v %v", ok, err)
	}
	bad := build(t).call(0, "X", prop(9), 9).h
	ok, err = TLinearizable(obj, bad, 0, Options{})
	if err != nil || ok {
		t.Fatalf("pre-decided override accepted: %v %v", ok, err)
	}
	// Moving the response into the prefix frees it.
	ok, err = TLinearizable(obj, bad, 2, Options{})
	if err != nil || !ok {
		t.Fatalf("pre-decided with free prefix: %v %v", ok, err)
	}
}

func TestConsensusFastPathRejectsForeignOps(t *testing.T) {
	h := build(t).call(0, "X", rd, 0).h
	if _, err := consensusTLinearizable(consX["X"], h, 0); err == nil {
		t.Error("fast path accepted a read")
	}
	neg := build(t).call(0, "X", prop(-3), 0).h
	if _, err := consensusTLinearizable(consX["X"], neg, 0); err == nil {
		t.Error("fast path accepted a negative proposal")
	}
}

// randomConsensusHistory produces a random consensus history: responses
// follow a first-linearized-wins simulation, corrupted at the given rate;
// some operations stay pending.
func randomConsensusHistory(r *rand.Rand, nproc, maxOps int, corrupt float64) *history.History {
	h := history.New()
	decided := spec.NoValue
	pendingVal := make(map[int]int64)
	invoked := 0
	nops := 1 + r.Intn(maxOps)
	for steps := 0; steps < 6*maxOps; steps++ {
		p := r.Intn(nproc)
		if v, ok := pendingVal[p]; ok {
			if r.Float64() < 0.15 {
				continue
			}
			if decided == spec.NoValue {
				decided = v
			}
			resp := decided
			if r.Float64() < corrupt {
				resp = int64(r.Intn(4))
			}
			if err := h.Respond(p, resp); err != nil {
				panic(err)
			}
			delete(pendingVal, p)
		} else if invoked < nops {
			v := int64(1 + r.Intn(3))
			if err := h.Invoke(p, "X", prop(v)); err != nil {
				panic(err)
			}
			pendingVal[p] = v
			invoked++
		}
	}
	return h
}
