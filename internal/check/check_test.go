package check

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// mustHistory builds a history from (kind, proc, obj, op-or-resp) calls.
type hb struct {
	t *testing.T
	h *history.History
}

func build(t *testing.T) *hb { return &hb{t: t, h: history.New()} }

func (b *hb) inv(p int, obj string, op spec.Op) *hb {
	b.t.Helper()
	if err := b.h.Invoke(p, obj, op); err != nil {
		b.t.Fatal(err)
	}
	return b
}

func (b *hb) res(p int, r int64) *hb {
	b.t.Helper()
	if err := b.h.Respond(p, r); err != nil {
		b.t.Fatal(err)
	}
	return b
}

func (b *hb) call(p int, obj string, op spec.Op, r int64) *hb {
	return b.inv(p, obj, op).res(p, r)
}

var (
	fi    = spec.MakeOp(spec.MethodFetchInc)
	rd    = spec.MakeOp(spec.MethodRead)
	wr    = func(v int64) spec.Op { return spec.MakeOp1(spec.MethodWrite, v) }
	regX  = map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	fincX = map[string]spec.Object{"X": spec.NewObject(spec.FetchInc{})}
)

func TestLegal(t *testing.T) {
	h := build(t).
		call(0, "X", wr(5), 0).
		call(1, "X", rd, 5).
		call(0, "X", rd, 5).h
	ok, err := Legal(regX, h)
	if err != nil || !ok {
		t.Fatalf("Legal = %v, %v; want true", ok, err)
	}

	bad := build(t).
		call(0, "X", wr(5), 0).
		call(1, "X", rd, 7).h
	ok, err = Legal(regX, bad)
	if err != nil || ok {
		t.Fatalf("Legal = %v, %v; want false", ok, err)
	}

	// Non-sequential input is rejected.
	conc := build(t).inv(0, "X", rd).inv(1, "X", rd).h
	if _, err := Legal(regX, conc); err == nil {
		t.Error("Legal accepted concurrent history")
	}

	// Missing spec is an error.
	if _, err := Legal(map[string]spec.Object{}, h); err == nil {
		t.Error("Legal accepted history with unknown object")
	}

	// Trailing pending invocation is fine.
	pend := build(t).call(0, "X", wr(1), 0).inv(1, "X", rd).h
	ok, err = Legal(regX, pend)
	if err != nil || !ok {
		t.Fatalf("Legal with pending tail = %v, %v; want true", ok, err)
	}
}

func TestLinearizableRegisterClassic(t *testing.T) {
	// w(1) by p0 concurrent with read by p1 returning 1: linearizable.
	h := build(t).
		inv(0, "X", wr(1)).
		inv(1, "X", rd).
		res(0, 0).
		res(1, 1).h
	ok, err := Linearizable(regX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("Linearizable = %v, %v; want true", ok, err)
	}

	// read strictly after w(1) returning 0: not linearizable.
	bad := build(t).
		call(0, "X", wr(1), 0).
		call(1, "X", rd, 0).h
	ok, err = Linearizable(regX, bad, Options{})
	if err != nil || ok {
		t.Fatalf("Linearizable = %v, %v; want false", ok, err)
	}

	// New-old inversion: two sequential reads see 1 then 0 around a
	// concurrent write — not linearizable.
	inv := build(t).
		inv(0, "X", wr(1)).
		call(1, "X", rd, 1).
		call(1, "X", rd, 0).
		res(0, 0).h
	ok, err = Linearizable(regX, inv, Options{})
	if err != nil || ok {
		t.Fatalf("new-old inversion Linearizable = %v, %v; want false", ok, err)
	}
}

func TestLinearizablePendingOps(t *testing.T) {
	// A pending write may be linearized to explain a read.
	h := build(t).
		inv(0, "X", wr(9)).
		call(1, "X", rd, 9).h
	ok, err := Linearizable(regX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("pending write explain: %v, %v; want true", ok, err)
	}

	// A pending op may also be ignored.
	h2 := build(t).
		inv(0, "X", wr(9)).
		call(1, "X", rd, 0).h
	ok, err = Linearizable(regX, h2, Options{})
	if err != nil || !ok {
		t.Fatalf("pending write ignored: %v, %v; want true", ok, err)
	}
}

func TestLinearizableFetchInc(t *testing.T) {
	// Two concurrent fetchincs returning 0 and 1: linearizable.
	h := build(t).
		inv(0, "X", fi).
		inv(1, "X", fi).
		res(0, 1).
		res(1, 0).h
	ok, err := Linearizable(fincX, h, Options{})
	if err != nil || !ok {
		t.Fatalf("Linearizable = %v, %v; want true", ok, err)
	}

	// Duplicate responses: never linearizable.
	dup := build(t).
		inv(0, "X", fi).
		inv(1, "X", fi).
		res(0, 0).
		res(1, 0).h
	ok, err = Linearizable(fincX, dup, Options{})
	if err != nil || ok {
		t.Fatalf("duplicate Linearizable = %v, %v; want false", ok, err)
	}
	// ... but it IS 1-linearizable: dropping the constraint on the first
	// response (event 2 is p0's res? order: inv0,inv1,res0,res1 — res0 at
	// index 2) frees p0's op. With t=3, p0's response is in the prefix.
	ok, err = TLinearizable(fincX["X"], dup, 3, Options{})
	if err != nil || !ok {
		t.Fatalf("duplicate 3-linearizable = %v, %v; want true", ok, err)
	}
}

func TestTLinearizableSkewReads(t *testing.T) {
	// Sequential: w(1); read->0. Not linearizable; 2-linearizable? The
	// read's response (index 3) is in the suffix for t=2, so the read must
	// return 0 while following w(1) in real time... but w(1)'s response is
	// at index 1 < t, so there is no real-time edge, and the write's
	// position in S is free: S = read->0, write->ok works. Hence even
	// t=2 suffices once the write's response leaves the suffix.
	h := build(t).
		call(0, "X", wr(1), 0).
		call(1, "X", rd, 0).h
	ok, err := TLinearizable(regX["X"], h, 2, Options{})
	if err != nil || !ok {
		t.Fatalf("2-linearizable = %v, %v; want true", ok, err)
	}
	ok, err = TLinearizable(regX["X"], h, 1, Options{})
	if err != nil || ok {
		t.Fatalf("1-linearizable = %v, %v; want false (edge from write still in suffix)", ok, err)
	}
	mt, found, err := MinT(regX["X"], h, Options{})
	if err != nil || !found || mt != 2 {
		t.Fatalf("MinT = %d, %v, %v; want 2", mt, found, err)
	}
}

func TestMinTZeroForLinearizable(t *testing.T) {
	h := build(t).
		inv(0, "X", wr(1)).
		inv(1, "X", rd).
		res(1, 0).
		res(0, 0).
		call(1, "X", rd, 1).h
	mt, found, err := MinT(regX["X"], h, Options{})
	if err != nil || !found || mt != 0 {
		t.Fatalf("MinT = %d, %v, %v; want 0", mt, found, err)
	}
}

// minTLinearScan is an oracle for MinT: scan t upward.
func minTLinearScan(t *testing.T, obj spec.Object, h *history.History) int {
	t.Helper()
	for tt := 0; tt <= h.Len(); tt++ {
		ok, err := TLinearizable(obj, h, tt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return tt
		}
	}
	t.Fatalf("history not t-linearizable for any t")
	return -1
}

func TestMinTBinarySearchAgreesWithLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		h := randomRegisterHistory(r, 3, 8, 0.3)
		mt, found, err := MinT(regX["X"], h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("trial %d: no t found", trial)
		}
		want := minTLinearScan(t, regX["X"], h)
		if mt != want {
			t.Fatalf("trial %d: binary MinT=%d, linear=%d\n%s", trial, mt, want, h)
		}
	}
}

func TestLemma5MonotonicityProperty(t *testing.T) {
	// Lemma 5: if a history is t-linearizable it is t'-linearizable for all
	// t' > t. Verified on random register histories with corrupted
	// responses (so both verdicts occur).
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		h := randomRegisterHistory(r, 3, 7, 0.5)
		prev := false
		for tt := 0; tt <= h.Len(); tt++ {
			ok, err := TLinearizable(regX["X"], h, tt, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if prev && !ok {
				t.Fatalf("trial %d: %d-lin true but %d-lin false\n%s", trial, tt-1, tt, h)
			}
			prev = ok
		}
		if !prev {
			t.Fatalf("trial %d: not |H|-linearizable (register is total)\n%s", trial, h)
		}
	}
}

func TestLemma6PrefixClosureProperty(t *testing.T) {
	// Lemma 6: if H is t-linearizable, so is every prefix of H.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		h := randomRegisterHistory(r, 3, 7, 0.4)
		for tt := 0; tt <= h.Len(); tt += 2 {
			full, err := TLinearizable(regX["X"], h, tt, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !full {
				continue
			}
			for k := 0; k <= h.Len(); k++ {
				pre, err := TLinearizable(regX["X"], h.Prefix(k), tt, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !pre {
					t.Fatalf("trial %d: H %d-lin but prefix %d is not\n%s", trial, tt, k, h)
				}
			}
		}
	}
}

// randomRegisterHistory generates a random well-formed single-object
// register history. With probability corrupt, a response value is replaced
// by a random value (so non-linearizable histories occur).
func randomRegisterHistory(r *rand.Rand, nproc, maxOps int, corrupt float64) *history.History {
	h := history.New()
	// Simulate an atomic register with random linearization points to get
	// plausible-and-often-correct responses.
	val := int64(0)
	type pendingOp struct {
		op     spec.Op
		isRead bool
	}
	pending := make(map[int]*pendingOp)
	invoked := 0
	nops := 1 + r.Intn(maxOps)
	for steps := 0; steps < 6*maxOps; steps++ {
		p := r.Intn(nproc)
		if po, ok := pending[p]; ok {
			var resp int64
			if po.isRead {
				resp = val
			} else {
				val = po.op.Args[0]
			}
			if r.Float64() < corrupt {
				resp = int64(r.Intn(4))
			}
			if err := h.Respond(p, resp); err != nil {
				panic(err)
			}
			delete(pending, p)
		} else if invoked < nops {
			var op spec.Op
			isRead := r.Intn(2) == 0
			if isRead {
				op = rd
			} else {
				op = wr(int64(1 + r.Intn(3)))
			}
			if err := h.Invoke(p, "X", op); err != nil {
				panic(err)
			}
			pending[p] = &pendingOp{op: op, isRead: isRead}
			invoked++
		}
	}
	return h
}

func TestSingleObjectGuard(t *testing.T) {
	h := build(t).call(0, "X", rd, 0).call(0, "Y", rd, 0).h
	if _, err := TLinearizable(regX["X"], h, 0, Options{}); err == nil {
		t.Error("single-object checker accepted two objects")
	}
}

func TestTooLarge(t *testing.T) {
	h := history.New()
	for i := 0; i < MaxOpsPerObject+1; i++ {
		if err := h.Call(0, "X", rd, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := TLinearizable(regX["X"], h, 0, Options{})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := randomRegisterHistory(r, 4, 12, 0.4)
	_, err := TLinearizable(regX["X"], h, 0, Options{Budget: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestLocalityAgainstProductState(t *testing.T) {
	// Lemma 7 / Herlihy-Wing locality: per-object linearizability agrees
	// with the direct product-state check.
	objs := map[string]spec.Object{
		"X": spec.NewObject(spec.Register{}),
		"Y": spec.NewObject(spec.FetchInc{}),
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		h := randomTwoObjectHistory(r, 3, 8, 0.3)
		perObj, _, err := LinearizableExplain(objs, h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := TLinearizableMulti(objs, h, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if perObj != direct {
			t.Fatalf("trial %d: locality=%v direct=%v\n%s", trial, perObj, direct, h)
		}
	}
}

func TestMinTGlobalUpperSound(t *testing.T) {
	// The Lemma 7 lift is an upper bound: the history is t-linearizable
	// (product check) at the lifted t.
	objs := map[string]spec.Object{
		"X": spec.NewObject(spec.Register{}),
		"Y": spec.NewObject(spec.FetchInc{}),
	}
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		h := randomTwoObjectHistory(r, 3, 7, 0.3)
		tUp, err := MinTGlobalUpper(objs, h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := TLinearizableMulti(objs, h, tUp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: lifted t=%d not sufficient\n%s", trial, tUp, h)
		}
	}
}

func randomTwoObjectHistory(r *rand.Rand, nproc, maxOps int, corrupt float64) *history.History {
	h := history.New()
	regVal := int64(0)
	counter := int64(0)
	type pendingOp struct {
		obj    string
		op     spec.Op
		isRead bool
	}
	pending := make(map[int]*pendingOp)
	invoked := 0
	nops := 1 + r.Intn(maxOps)
	for steps := 0; steps < 6*maxOps; steps++ {
		p := r.Intn(nproc)
		if po, ok := pending[p]; ok {
			var resp int64
			switch {
			case po.obj == "Y":
				resp = counter
				counter++
			case po.isRead:
				resp = regVal
			default:
				regVal = po.op.Args[0]
			}
			if r.Float64() < corrupt {
				resp = int64(r.Intn(4))
			}
			if err := h.Respond(p, resp); err != nil {
				panic(err)
			}
			delete(pending, p)
		} else if invoked < nops {
			po := &pendingOp{}
			if r.Intn(2) == 0 {
				po.obj = "Y"
				po.op = fi
			} else {
				po.obj = "X"
				po.isRead = r.Intn(2) == 0
				if po.isRead {
					po.op = rd
				} else {
					po.op = wr(int64(1 + r.Intn(3)))
				}
			}
			if err := h.Invoke(p, po.obj, po.op); err != nil {
				panic(err)
			}
			pending[p] = po
			invoked++
		}
	}
	return h
}

func TestTLinearizableLocalNecessaryNotSufficient(t *testing.T) {
	objs := map[string]spec.Object{
		"R1": spec.NewObject(spec.Register{}),
		"R2": spec.NewObject(spec.Register{}),
	}
	// The k=2 Proposition 9 block: w(R1,1);r(R1)->0; w(R2,1);r(R2)->0.
	h := build(t).
		call(0, "R1", wr(1), 0).
		call(1, "R1", rd, 0).
		call(0, "R2", wr(1), 0).
		call(1, "R2", rd, 0).h
	// With t=2: both projections pass (each object's write response is
	// free in ITS OWN projection after its first 2 events — R1's;
	// R2's projection sees t=2 remove only R2's first two events).
	localOK, _, err := TLinearizableLocal(objs, h, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !localOK {
		t.Fatal("local necessary condition failed unexpectedly")
	}
	// But globally t=2 is insufficient: the R2 block lies entirely in the
	// suffix.
	globalOK, err := TLinearizableMulti(objs, h, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if globalOK {
		t.Fatal("global 2-linearizability should fail (R2 block in suffix)")
	}
	// Necessity: when the local check fails, the global must fail too.
	localOK, badObj, err := TLinearizableLocal(objs, h, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if localOK || badObj == "" {
		t.Fatal("local check at t=0 should fail with a named object")
	}
	globalOK, err = TLinearizableMulti(objs, h, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if globalOK {
		t.Fatal("global t=0 must fail when local fails (Lemma 7 only-if)")
	}
}

func TestMinTMultiExact(t *testing.T) {
	objs := map[string]spec.Object{
		"R1": spec.NewObject(spec.Register{}),
		"R2": spec.NewObject(spec.Register{}),
	}
	h := build(t).
		call(0, "R1", wr(1), 0).
		call(1, "R1", rd, 0).
		call(0, "R2", wr(1), 0).
		call(1, "R2", rd, 0).h
	exact, ok, err := MinTMulti(objs, h, Options{})
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	// The R2 write's response (event 5) must leave the suffix: t = 6.
	if exact != 6 {
		t.Fatalf("exact global MinT = %d, want 6", exact)
	}
	lift, err := MinTGlobalUpper(objs, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact > lift {
		t.Fatalf("exact %d exceeds lift %d", exact, lift)
	}
}

func TestProposition9Counterexample(t *testing.T) {
	// The paper's infinite-register history: p writes 1 to R_i, then q
	// reads R_i -> 0, for i = 1, 2, 3, ... Each per-object projection is
	// eventually linearizable (t_o = 4 suffices once both ops answered in
	// the prefix... in fact the projection is 2-linearizable), but the
	// global MinT grows linearly with the prefix: the pattern repeats on
	// fresh objects forever.
	const k = 12
	h := history.New()
	objs := make(map[string]spec.Object)
	for i := 1; i <= k; i++ {
		name := "R" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		objs[name] = spec.NewObject(spec.Register{})
		if err := h.Call(0, name, wr(1), 0); err != nil {
			t.Fatal(err)
		}
		if err := h.Call(1, name, rd, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Per-object: every projection has the same small MinT.
	local, err := MinTLocal(objs, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, to := range local {
		if to != 2 {
			t.Errorf("object %s MinT = %d, want 2", name, to)
		}
	}
	// Global: the last block always needs its write's response (position
	// 4k-3) inside the prefix, so global MinT grows with k.
	prevGlobal := -1
	for blocks := 2; blocks <= k; blocks += 2 {
		pre := h.Prefix(4 * blocks)
		g, err := MinTGlobalUpper(objs, pre, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g <= prevGlobal {
			t.Fatalf("global MinT did not grow: %d then %d at %d blocks", prevGlobal, g, blocks)
		}
		prevGlobal = g
	}
}

func TestSection32Counterexample(t *testing.T) {
	// The fetch&inc history: p's op answers 0 first, then q's ops answer
	// 0, 1, 2, ... Every finite prefix is 2-linearizable (p's op moves to
	// the end with a reassigned response), but the forced slot of p's op
	// equals the number of q-operations — it "escapes to infinity", which
	// is why the infinite history is not 2-linearizable and why
	// t-linearizability is not a safety property (Section 3.2).
	for k := 1; k <= 10; k++ {
		h := history.New()
		if err := h.Call(0, "X", fi, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := h.Call(1, "X", fi, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		ok, err := TLinearizable(fincX["X"], h, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("prefix with k=%d should be 2-linearizable", k)
		}
		// Not 0- or 1-linearizable (duplicate response 0 in suffix).
		ok, err = TLinearizable(fincX["X"], h, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("prefix with k=%d should not be 1-linearizable", k)
		}
	}
}
