// Package server is the networked face of the live runtime: a long-lived
// framed-TCP server exposing one registry live.Object to remote clients,
// with per-client shards feeding the same watermark merge, commit sink and
// online monitor the in-process runtime uses — plus the seeded network
// fault plane (faults.NetSpec) injected at the connection read/write seam.
//
// # Wire protocol
//
// Frames are exactly the WAL's: [len uint32 LE][crc uint32 LE][payload],
// with the payload's first byte the message type. A connection opens with
// the client's hello (magic, client id, resume count) answered by the
// server's hello-ack (the session's applied count plus the cached last
// response), after which the client sends request frames and the server
// answers each with a response frame carrying the commit ticket. Sessions
// are keyed by client id and survive reconnects: operations are strictly
// sequential per client (op index 0,1,2,...), the server caches the last
// applied operation's response, and a request one below the applied count
// replays that cache instead of re-applying — together with the hello-ack
// reconciliation this makes every reconnect exactly-once: an operation the
// server committed is never re-applied, an operation it never saw is
// resent, and nothing else is possible.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/elin-go/elin/internal/spec"
)

// Magic opens every client hello (8 bytes, version in the last byte).
var Magic = [8]byte{'E', 'L', 'I', 'N', 'S', 'R', 'V', '1'}

// maxFrame bounds a frame payload, like the WAL's: longer lengths are
// treated as a broken peer.
const maxFrame = 1 << 20

// Message type tags (first payload byte).
const (
	MsgHello    = 0x01 // client -> server: magic, client id, resume count
	MsgHelloAck = 0x02 // server -> client: applied count, cached last response
	MsgRequest  = 0x03 // client -> server: op index, operation
	MsgResponse = 0x04 // server -> client: op index, response, commit ticket
	MsgError    = 0x05 // server -> client: text, connection closes after
)

// Hello is the client's handshake: which session to (re)attach and how
// many operations the client believes have committed.
type Hello struct {
	Client uint64
	Done   uint64
}

// HelloAck is the server's handshake answer: the session's applied count
// and the cached response of the last applied operation (meaningful only
// when Applied > 0). A reconnecting client compares Applied against its
// own progress: equal means resend the in-flight operation, one ahead
// means the in-flight operation committed and the cache carries its
// response.
type HelloAck struct {
	Applied    uint64
	LastResp   int64
	LastTicket uint64
}

// Request is one operation submission. OpIndex is the client's strictly
// sequential operation counter; the server applies index == applied and
// replays its cache for index == applied-1 (a retry of the last
// operation).
type Request struct {
	OpIndex uint64
	Op      spec.Op
}

// Response answers one Request with the response value and the commit
// ticket the operation drew.
type Response struct {
	OpIndex uint64
	Resp    int64
	Ticket  uint64
}

// AppendFrame appends the CRC framing of payload to b.
func AppendFrame(b, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// WriteFrame frames payload and writes it in one Write call.
func WriteFrame(w io.Writer, payload []byte) error {
	frame := AppendFrame(make([]byte, 0, 8+len(payload)), payload)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("server: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame and returns its payload. A bad length or CRC
// is an error — the stream carries no resynchronization points, so the
// connection is useless afterwards.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through: a clean close between frames
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("server: short frame: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("server: frame CRC mismatch")
	}
	return payload, nil
}

// AppendHello encodes a hello payload.
func AppendHello(b []byte, h Hello) []byte {
	b = append(b, MsgHello)
	b = append(b, Magic[:]...)
	b = binary.AppendUvarint(b, h.Client)
	return binary.AppendUvarint(b, h.Done)
}

// DecodeHello decodes a hello payload (including the type byte).
func DecodeHello(b []byte) (Hello, error) {
	if len(b) < 1+len(Magic) || b[0] != MsgHello {
		return Hello{}, fmt.Errorf("server: not a hello frame")
	}
	b = b[1:]
	if string(b[:len(Magic)]) != string(Magic[:]) {
		return Hello{}, fmt.Errorf("server: bad hello magic")
	}
	b = b[len(Magic):]
	var h Hello
	var n int
	if h.Client, n = binary.Uvarint(b); n <= 0 {
		return Hello{}, fmt.Errorf("server: bad hello client id")
	}
	b = b[n:]
	if h.Done, n = binary.Uvarint(b); n <= 0 || len(b) != n {
		return Hello{}, fmt.Errorf("server: bad hello done count")
	}
	return h, nil
}

// AppendHelloAck encodes a hello-ack payload.
func AppendHelloAck(b []byte, a HelloAck) []byte {
	b = append(b, MsgHelloAck)
	b = binary.AppendUvarint(b, a.Applied)
	b = binary.AppendVarint(b, a.LastResp)
	return binary.AppendUvarint(b, a.LastTicket)
}

// DecodeHelloAck decodes a hello-ack payload.
func DecodeHelloAck(b []byte) (HelloAck, error) {
	if len(b) < 1 || b[0] != MsgHelloAck {
		return HelloAck{}, fmt.Errorf("server: not a hello-ack frame")
	}
	b = b[1:]
	var a HelloAck
	var n int
	if a.Applied, n = binary.Uvarint(b); n <= 0 {
		return HelloAck{}, fmt.Errorf("server: bad hello-ack applied count")
	}
	b = b[n:]
	if a.LastResp, n = binary.Varint(b); n <= 0 {
		return HelloAck{}, fmt.Errorf("server: bad hello-ack response")
	}
	b = b[n:]
	if a.LastTicket, n = binary.Uvarint(b); n <= 0 || len(b) != n {
		return HelloAck{}, fmt.Errorf("server: bad hello-ack ticket")
	}
	return a, nil
}

// AppendRequest encodes a request payload (op encoding mirrors the WAL's
// event payload: method length, method, arg count, varint args).
func AppendRequest(b []byte, r Request) []byte {
	b = append(b, MsgRequest)
	b = binary.AppendUvarint(b, r.OpIndex)
	b = binary.AppendUvarint(b, uint64(len(r.Op.Method)))
	b = append(b, r.Op.Method...)
	b = append(b, byte(r.Op.NArgs))
	for i := 0; i < r.Op.NArgs; i++ {
		b = binary.AppendVarint(b, r.Op.Args[i])
	}
	return b
}

// DecodeRequest decodes a request payload.
func DecodeRequest(b []byte) (Request, error) {
	bad := func(what string) (Request, error) {
		return Request{}, fmt.Errorf("server: bad request frame: %s", what)
	}
	if len(b) < 1 || b[0] != MsgRequest {
		return bad("type")
	}
	b = b[1:]
	var r Request
	var n int
	if r.OpIndex, n = binary.Uvarint(b); n <= 0 {
		return bad("op index")
	}
	b = b[n:]
	mlen, n := binary.Uvarint(b)
	if n <= 0 || mlen > uint64(len(b)-n) {
		return bad("method length")
	}
	b = b[n:]
	r.Op.Method = string(b[:mlen])
	b = b[mlen:]
	if len(b) < 1 {
		return bad("arg count")
	}
	nargs := int(b[0])
	b = b[1:]
	if nargs < 0 || nargs > len(r.Op.Args) {
		return bad("arg count range")
	}
	r.Op.NArgs = nargs
	for i := 0; i < nargs; i++ {
		v, n := binary.Varint(b)
		if n <= 0 {
			return bad("arg")
		}
		r.Op.Args[i] = v
		b = b[n:]
	}
	if len(b) != 0 {
		return bad("trailing bytes")
	}
	return r, nil
}

// AppendResponse encodes a response payload.
func AppendResponse(b []byte, r Response) []byte {
	b = append(b, MsgResponse)
	b = binary.AppendUvarint(b, r.OpIndex)
	b = binary.AppendVarint(b, r.Resp)
	return binary.AppendUvarint(b, r.Ticket)
}

// DecodeResponse decodes a response payload.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 1 || b[0] != MsgResponse {
		return Response{}, fmt.Errorf("server: not a response frame")
	}
	b = b[1:]
	var r Response
	var n int
	if r.OpIndex, n = binary.Uvarint(b); n <= 0 {
		return Response{}, fmt.Errorf("server: bad response op index")
	}
	b = b[n:]
	if r.Resp, n = binary.Varint(b); n <= 0 {
		return Response{}, fmt.Errorf("server: bad response value")
	}
	b = b[n:]
	if r.Ticket, n = binary.Uvarint(b); n <= 0 || len(b) != n {
		return Response{}, fmt.Errorf("server: bad response ticket")
	}
	return r, nil
}

// AppendError encodes an error payload.
func AppendError(b []byte, text string) []byte {
	return append(append(b, MsgError), text...)
}

// DecodeError decodes an error payload's text (empty ok for other types).
func DecodeError(b []byte) (string, bool) {
	if len(b) < 1 || b[0] != MsgError {
		return "", false
	}
	return string(b[1:]), true
}
