package server_test

import (
	"bufio"
	"net"
	"path/filepath"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/loadgen"
	"github.com/elin-go/elin/internal/server"
	"github.com/elin-go/elin/internal/wal"
)

// startServer stands up a server on 127.0.0.1:0 and returns it with its
// address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Serve(ln)
	return s, ln.Addr().String()
}

// load runs a fleet against addr and requires every client to succeed.
func load(t *testing.T, cfg loadgen.Config) *loadgen.Result {
	t.Helper()
	res, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v (result %+v)", err, res)
	}
	return res
}

func requireExactlyOnce(t *testing.T, res *loadgen.Result) {
	t.Helper()
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Fatalf("exactly-once broken: lost=%d duplicated=%d (completed %d)",
			res.Lost, res.Duplicated, res.Completed)
	}
}

func TestServeBasic(t *testing.T) {
	const clients, ops = 4, 200
	s, addr := startServer(t, server.Config{
		Object:  live.NewAtomicFetchInc("C", 0),
		Clients: clients,
		Seed:    1,
		Monitor: check.IncrementalConfig{Stride: 64, MaxT: 0},
	})
	res := load(t, loadgen.Config{
		Addr: addr, Clients: clients, Ops: ops,
		Gen: live.FetchIncGen(), Seed: 1,
	})
	requireExactlyOnce(t, res)
	sum, err := s.Shutdown()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if sum.Violation != nil {
		t.Fatalf("monitor violation on a linearizable object: %v", sum.Violation)
	}
	if sum.Commits != clients*ops {
		t.Fatalf("commits = %d, want %d", sum.Commits, clients*ops)
	}
	if sum.Events != 2*clients*ops {
		t.Fatalf("events = %d, want %d", sum.Events, 2*clients*ops)
	}
	for id, a := range sum.Applied {
		if a != ops {
			t.Fatalf("session %d applied %d, want %d", id, a, ops)
		}
	}
}

// The acceptance headline: under flaky-net (drops, a slow link, one
// partition-and-heal) the fleet completes with zero lost and zero
// duplicated commits and the monitor verdict matches the fault-free
// baseline (no violation, same commit count).
func TestServeFlakyNetExactlyOnce(t *testing.T) {
	const clients, ops = 4, 150
	nf, err := faults.ParseNet("drop:0@40,drop:1@80,slow:2:200,partition:120+40")
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, server.Config{
		Object:    live.NewAtomicFetchInc("C", 0),
		Clients:   clients,
		Seed:      7,
		Monitor:   check.IncrementalConfig{Stride: 64, MaxT: 0},
		NetFaults: nf,
	})
	res := load(t, loadgen.Config{
		Addr: addr, Clients: clients, Ops: ops,
		Gen: live.FetchIncGen(), Seed: 7,
	})
	requireExactlyOnce(t, res)
	if res.Reconnects == 0 {
		t.Fatal("flaky-net run saw no reconnects — faults did not fire")
	}
	sum, err := s.Shutdown()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if sum.Violation != nil {
		t.Fatalf("faulted run violated: %v", sum.Violation)
	}
	if sum.Commits != clients*ops {
		t.Fatalf("commits = %d, want %d (faults must not duplicate or lose commits)",
			sum.Commits, clients*ops)
	}
	if sum.Events != 2*clients*ops {
		t.Fatalf("events = %d, want %d (resumed ops must not re-record)",
			sum.Events, 2*clients*ops)
	}
}

// A partition severs the odd clients and heals when the even side's
// commits move the ticket past the window (or by knocking): everyone
// finishes, exactly once.
func TestServePartitionHeals(t *testing.T) {
	const clients, ops = 4, 120
	nf, err := faults.ParseNet("partition:60+40")
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, server.Config{
		Object:    live.NewAtomicFetchInc("C", 0),
		Clients:   clients,
		Seed:      3,
		Monitor:   check.IncrementalConfig{Stride: 64, MaxT: 0},
		NetFaults: nf,
	})
	res := load(t, loadgen.Config{
		Addr: addr, Clients: clients, Ops: ops,
		Gen: live.FetchIncGen(), Seed: 3,
	})
	requireExactlyOnce(t, res)
	sum, err := s.Shutdown()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if sum.Violation != nil {
		t.Fatalf("partitioned run violated: %v", sum.Violation)
	}
	if sum.Commits != clients*ops {
		t.Fatalf("commits = %d, want %d", sum.Commits, clients*ops)
	}
}

// Overload degrades the monitor to sampling, and the Summary reports it.
func TestServeOverloadSampling(t *testing.T) {
	const clients, ops = 8, 300
	s, addr := startServer(t, server.Config{
		Object:         live.NewAtomicFetchInc("C", 0),
		Clients:        clients,
		Seed:           1,
		Monitor:        check.IncrementalConfig{Stride: 64, MaxT: 0},
		OverloadQueued: 1, // any backlog at all counts as overload
		SampleEvery:    4,
	})
	res := load(t, loadgen.Config{
		Addr: addr, Clients: clients, Ops: ops,
		Gen: live.FetchIncGen(), Seed: 1,
	})
	requireExactlyOnce(t, res)
	sum, err := s.Shutdown()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !sum.Overloaded {
		t.Fatal("overload controller never engaged at threshold 1")
	}
	if sum.MonMaxSampleEvery != 4 {
		t.Fatalf("MonMaxSampleEvery = %d, want 4", sum.MonMaxSampleEvery)
	}
	if sum.MonSkipped == 0 {
		t.Fatal("sampling engaged but no window was skipped")
	}
	if sum.Violation != nil {
		t.Fatalf("clean overloaded run violated: %v", sum.Violation)
	}
}

// A WAL-backed server persists the merged stream: recovery reads back
// exactly the events the server merged, with the last commit matching the
// final ticket.
func TestServeWALPersistsMergedStream(t *testing.T) {
	const clients, ops = 3, 100
	path := filepath.Join(t.TempDir(), "serve.wal")
	log, err := wal.Create(path, wal.Header{
		Object: "atomic-fi", ObjName: "C", Procs: clients, Ops: ops, Seed: 5,
	}, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, server.Config{
		Object:  live.NewAtomicFetchInc("C", 0),
		Clients: clients,
		Seed:    5,
		Monitor: check.IncrementalConfig{Stride: 64, MaxT: 0},
		Sink:    log,
	})
	res := load(t, loadgen.Config{
		Addr: addr, Clients: clients, Ops: ops,
		Gen: live.FetchIncGen(), Seed: 5,
	})
	requireExactlyOnce(t, res)
	sum, err := s.Shutdown()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rec, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn {
		t.Fatalf("cleanly closed log torn at %d", rec.TornAt)
	}
	if rec.Frames != sum.Events {
		t.Fatalf("recovered %d frames, server merged %d events", rec.Frames, sum.Events)
	}
	if rec.LastCommit() != sum.Commits {
		t.Fatalf("recovered last commit %d, server at %d", rec.LastCommit(), sum.Commits)
	}
	for i, e := range rec.Events {
		got := sum.History.Event(i)
		if e.Kind != got.Kind || e.Proc != got.Proc || e.Resp != got.Resp {
			t.Fatalf("event %d diverges: wal %+v vs history %+v", i, e, got)
		}
	}
}

// newReader wraps a test connection for frame reads.
func newReader(c net.Conn) *bufio.Reader { return bufio.NewReader(c) }

// An out-of-sequence op index is a protocol error, answered and closed.
func TestServeRejectsOutOfSequence(t *testing.T) {
	s, addr := startServer(t, server.Config{
		Object:    live.NewAtomicFetchInc("C", 0),
		Clients:   1,
		NoMonitor: true,
	})
	defer s.Shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := server.WriteFrame(conn, server.AppendHello(nil, server.Hello{Client: 0, Done: 0})); err != nil {
		t.Fatal(err)
	}
	br := newReader(conn)
	if _, err := server.ReadFrame(br); err != nil { // hello-ack
		t.Fatal(err)
	}
	req := server.Request{OpIndex: 5}
	req.Op.Method = "fetchinc"
	if err := server.WriteFrame(conn, server.AppendRequest(nil, req)); err != nil {
		t.Fatal(err)
	}
	payload, err := server.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, isErr := server.DecodeError(payload); !isErr {
		t.Fatalf("out-of-sequence op answered with %x, want error frame", payload[0])
	}
}

// A client claiming more progress than the server has applied is a lost
// commit — refused at the handshake.
func TestServeRejectsLostCommitClaim(t *testing.T) {
	s, addr := startServer(t, server.Config{
		Object:    live.NewAtomicFetchInc("C", 0),
		Clients:   1,
		NoMonitor: true,
	})
	defer s.Shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := server.WriteFrame(conn, server.AppendHello(nil, server.Hello{Client: 0, Done: 3})); err != nil {
		t.Fatal(err)
	}
	payload, err := server.ReadFrame(newReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if _, isErr := server.DecodeError(payload); !isErr {
		t.Fatal("over-claiming hello accepted")
	}
}

// The merged history of a server run replays byte-identically (the same
// contract live.Run keeps).
func TestServeHistoryReplays(t *testing.T) {
	const clients, ops = 3, 80
	s, addr := startServer(t, server.Config{
		Object:  live.NewAtomicFetchInc("C", 0),
		Clients: clients,
		Seed:    2,
		Monitor: check.IncrementalConfig{Stride: 64, MaxT: 0},
	})
	res := load(t, loadgen.Config{
		Addr: addr, Clients: clients, Ops: ops,
		Gen: live.FetchIncGen(), Seed: 2,
	})
	requireExactlyOnce(t, res)
	sum, err := s.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	identical, err := live.Verify(live.NewAtomicFetchInc("C", 0), sum.History)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Fatal("server-merged history did not replay identically")
	}
	// And it is a valid history object-wise.
	if sum.History.Len() != 2*clients*ops {
		t.Fatalf("history length %d, want %d", sum.History.Len(), 2*clients*ops)
	}
	var _ *history.History = sum.History
}
