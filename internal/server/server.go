package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/live"
)

// PartitionKnockHeal is the escape hatch on a partition that cannot heal
// by traffic alone: after this many refused connection attempts the
// partition is declared healed early, so a run whose majority side has
// already finished its operations cannot deadlock the minority.
const PartitionKnockHeal = 16

// Config describes a server run.
type Config struct {
	// Object is the shared object served to every client.
	Object live.Object
	// Clients is the client id space: ids 0..Clients-1 are valid, and one
	// session (with its shard) is preallocated per id.
	Clients int
	// Seed pins the network fault plane's decisions (the specs themselves
	// are pure functions of the commit ticket; the seed is recorded for
	// symmetry with the rest of the fault plane and for future directives).
	Seed int64
	// Monitor configures the server-side online monitor; NoMonitor
	// disables it.
	Monitor   check.IncrementalConfig
	NoMonitor bool
	// MonitorSpec selects the monitor implementation (full, sample:N,
	// shard:K, shard:key, none — see check.ParseMonitorSpec). The zero
	// value is the sequential exhaustive monitor; kind none is equivalent
	// to NoMonitor.
	MonitorSpec check.MonitorSpec
	// NetFaults is the seeded network fault plane, injected at the
	// connection read/write seam (nil = no faults).
	NetFaults *faults.NetSpec
	// Sink, when non-nil, persists the merged event stream (the WAL). The
	// server owns it after Start and closes it on Shutdown.
	Sink live.CommitSink
	// QueueDepth bounds each connection's request queue (default 64). A
	// full queue stops the connection's reader — backpressure through TCP
	// instead of unbounded memory.
	QueueDepth int
	// OverloadQueued is the high-water mark of queued requests across
	// connections at which the monitor degrades to sampling (default
	// 4096; negative disables degradation).
	OverloadQueued int
	// SampleEvery is the sampling interval the monitor degrades to under
	// overload (default 8).
	SampleEvery int
}

func (c *Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c *Config) overloadQueued() int {
	if c.OverloadQueued == 0 {
		return 4096
	}
	return c.OverloadQueued
}

func (c *Config) sampleEvery() int {
	if c.SampleEvery <= 1 {
		return 8
	}
	return c.SampleEvery
}

// session is one client's server-side state, keyed by client id and
// surviving reconnects. applied/lastResp/lastTicket are touched only by
// the connection currently holding mu — the handshake takes the lock for
// the connection's lifetime, so a reconnect serializes behind the death of
// the connection it replaces.
type session struct {
	id    int
	shard *live.Shard

	mu         sync.Mutex
	applied    uint64 // operations committed for this client
	lastResp   int64  // response cache for the last applied operation
	lastTicket uint64

	// inflight is true between an operation's invoke record and its commit
	// record. The bound refresher loads the sequencer BEFORE checking
	// inflight: if inflight reads false, any operation that starts later
	// stamps at least that sequencer value, so publishing it as the
	// shard's idle bound can never overtake a future record.
	inflight atomic.Bool
}

// Summary is what a server run produced, returned by Shutdown.
type Summary struct {
	// Events is the merged history length; Commits the final commit
	// ticket.
	Events  int
	Commits uint64
	// Applied is each session's committed operation count.
	Applied []uint64
	// Verdict and Violation come from the online monitor (zero Verdict
	// when the monitor was disabled).
	Verdict   check.Verdict
	Violation *check.WindowViolation
	// Monitor degradation counters (see check.Monitor).
	MonChecks         int
	MonSkipped        int
	MonEscalations    int
	MonSampleEvery    int
	MonMaxSampleEvery int
	// Overloaded reports whether the overload controller ever engaged
	// sampling.
	Overloaded bool
	// History is the merged run (the same artifact live.Run returns).
	History *history.History
}

// Server is a running instance. Start it with Serve, stop it with
// Shutdown.
type Server struct {
	cfg Config
	ln  net.Listener

	seq      atomic.Uint64
	sessions []*session
	h        *history.History
	mon      check.Monitor

	queued     atomic.Int64 // requests read but not yet applied
	queuedHW   atomic.Int64 // high-water mark of queued since start
	overloaded atomic.Bool

	stop      atomic.Bool
	finishing atomic.Bool
	connWG    sync.WaitGroup
	mergeDone chan struct{}
	mergeErr  error

	dropFired []atomic.Bool // one flag per NetFaults.Drops directive
	knocks    atomic.Int64  // refused connection attempts while partitioned
	healed    atomic.Bool   // partition healed early by knocking
}

// New builds a server; Serve starts it.
func New(cfg Config) (*Server, error) {
	if cfg.Object == nil {
		return nil, fmt.Errorf("server: no object")
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("server: need at least one client id (got %d)", cfg.Clients)
	}
	s := &Server{
		cfg:       cfg,
		h:         history.New(),
		mergeDone: make(chan struct{}),
	}
	s.sessions = make([]*session, cfg.Clients)
	for i := range s.sessions {
		s.sessions[i] = &session{id: i, shard: live.NewShard(0)}
	}
	// Kind none keeps mon nil, like NoMonitor: the Summary then reports the
	// monitor as disabled instead of an empty verdict.
	if !cfg.NoMonitor && cfg.MonitorSpec.Kind != check.MonitorNone {
		mon, err := check.NewMonitor(cfg.MonitorSpec, cfg.Object.Spec(), cfg.Monitor)
		if err != nil {
			return nil, err
		}
		s.mon = mon
	}
	if cfg.NetFaults != nil {
		s.dropFired = make([]atomic.Bool, len(cfg.NetFaults.Drops))
	}
	return s, nil
}

// Serve starts accepting connections on ln and starts the merge loop. It
// returns immediately; the server runs until Shutdown.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	go s.mergeLoop()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed: Shutdown
			}
			s.connWG.Add(1)
			go func() {
				defer s.connWG.Done()
				s.handleConn(c)
			}()
		}
	}()
}

// Addr returns the listen address (for clients of a :0 listener).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Seq returns the current commit ticket.
func (s *Server) Seq() uint64 { return s.seq.Load() }

// Shutdown stops accepting, waits for live connections to die, drains the
// merge, finishes the monitor and closes the sink. The returned Summary
// is the run's artifact.
func (s *Server) Shutdown() (*Summary, error) {
	s.stop.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.connWG.Wait()
	for _, sess := range s.sessions {
		sess.shard.Finish()
	}
	s.finishing.Store(true)
	<-s.mergeDone
	if s.mon != nil {
		// No-op after the merge loop's Finish; on the merge-error path it is
		// what stops a pipelined monitor's workers.
		s.mon.Abort()
	}

	sum := &Summary{
		Events:  s.h.Len(),
		Commits: s.seq.Load(),
		History: s.h,
	}
	for _, sess := range s.sessions {
		sum.Applied = append(sum.Applied, sess.applied)
	}
	if s.mon != nil {
		sum.Verdict = s.mon.Verdict()
		sum.Violation = s.mon.Violation()
		sum.MonChecks = s.mon.Checks()
		sum.MonSkipped = s.mon.SkippedWindows()
		sum.MonEscalations = s.mon.Escalations()
		sum.MonSampleEvery = s.mon.SampleEvery()
		sum.MonMaxSampleEvery = s.mon.MaxSampleEvery()
	}
	sum.Overloaded = s.overloaded.Load()
	err := s.mergeErr
	if s.cfg.Sink != nil {
		if cerr := s.cfg.Sink.Close(); err == nil {
			err = cerr
		}
	}
	return sum, err
}

// feed is the merge drain's per-event hook: sink first (durability before
// checking), then the monitor. A monitor violation does not stop the
// server — the monitor freezes itself and the violation surfaces in the
// Summary; a long-lived server keeps serving while operators decide.
func (s *Server) feed(e history.Event, pos uint64) error {
	if s.cfg.Sink != nil {
		if err := s.cfg.Sink.Append(e, pos); err != nil {
			return fmt.Errorf("server: sink: %w", err)
		}
	}
	if s.mon != nil {
		if _, err := s.mon.Feed(e); err != nil {
			return fmt.Errorf("server: monitor: %w", err)
		}
	}
	return nil
}

// mergeLoop drains the session shards into the history until Shutdown,
// refreshing idle bounds (so an idle or disconnected client never stalls
// the merge) and engaging the monitor's sampling fallback under overload.
func (s *Server) mergeLoop() {
	defer close(s.mergeDone)
	m := live.NewMerger(s.cfg.Object.Name(), 0, s.shards())
	for {
		n, err := m.Drain(s.h, s.feed)
		if err != nil {
			s.mergeErr = err
			// Keep draining nothing until Shutdown; the error is reported
			// there. Feeding stopped, so no further events accumulate
			// downstream state.
			<-s.waitFinishing()
			return
		}
		if s.finishing.Load() && n == 0 {
			// All shards finished and fully consumed: done.
			if s.mon != nil {
				if _, err := s.mon.Finish(); err != nil && s.mergeErr == nil {
					s.mergeErr = err
				}
			}
			return
		}
		if n == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		s.refreshBounds()
		s.checkOverload()
	}
}

// waitFinishing returns a channel closed once Shutdown has finished the
// shards (poll-based; only used on the merge error path).
func (s *Server) waitFinishing() <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for !s.finishing.Load() {
			time.Sleep(time.Millisecond)
		}
		close(ch)
	}()
	return ch
}

func (s *Server) shards() []*live.Shard {
	sh := make([]*live.Shard, len(s.sessions))
	for i, sess := range s.sessions {
		sh[i] = sess.shard
	}
	return sh
}

// refreshBounds publishes the current sequencer value as the idle bound of
// every session with no operation in flight. Ordering: the sequencer is
// loaded BEFORE inflight — if inflight then reads false, any future
// operation stamps at or above the loaded value, so its records' keys are
// strictly above the (value, 0) bound.
func (s *Server) refreshBounds() {
	bound := s.seq.Load()
	for _, sess := range s.sessions {
		if !sess.inflight.Load() {
			sess.shard.SetBound(bound)
		}
	}
}

// checkOverload engages the monitor's sampling fallback when the queued
// backlog's high-water mark crosses the configured threshold. Escalation
// back to exhaustive checking is the monitor's own near-violation logic.
func (s *Server) checkOverload() {
	if s.mon == nil || s.cfg.overloadQueued() < 0 {
		return
	}
	if int(s.queuedHW.Load()) >= s.cfg.overloadQueued() && s.mon.SampleEvery() == 1 {
		s.mon.SetSampleEvery(s.cfg.sampleEvery())
		s.overloaded.Store(true)
	}
}

// ----------------------------------------------------------------------------
// Fault seam.

// severDrop reports (and fires, exactly once per directive) a drop
// directive for the client whose trigger ticket has passed.
func (s *Server) severDrop(client int) bool {
	nf := s.cfg.NetFaults
	if nf == nil {
		return false
	}
	now := s.seq.Load()
	for i, d := range nf.Drops {
		if d.Client == client && now >= d.Ticket && s.dropFired[i].CompareAndSwap(false, true) {
			return true
		}
	}
	return false
}

// partitioned reports whether the partition currently severs this client:
// the window covers the commit ticket, the client is on the minority
// (odd) side, and knocking has not healed the split early.
func (s *Server) partitioned(client int) bool {
	nf := s.cfg.NetFaults
	if nf == nil || client%2 == 0 || s.healed.Load() {
		return false
	}
	return nf.Partition.Active(s.seq.Load())
}

// sever decides whether the fault plane cuts this client's connection at
// the current seam crossing (called before processing a read and before
// writing a response).
func (s *Server) sever(client int) bool {
	return s.severDrop(client) || s.partitioned(client)
}

// refuseHello rejects a handshake mid-partition and counts the knock;
// enough knocks heal the partition early (see PartitionKnockHeal).
func (s *Server) refuseHello(client int) bool {
	if !s.partitioned(client) {
		return false
	}
	if s.knocks.Add(1) >= PartitionKnockHeal {
		s.healed.Store(true)
		return false
	}
	return true
}

// ----------------------------------------------------------------------------
// Connection handling.

// handleConn runs one connection: handshake, then the read->queue->apply
// pipeline until the connection dies, a fault severs it, or the client
// closes cleanly.
func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)

	payload, err := ReadFrame(br)
	if err != nil {
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		WriteFrame(c, AppendError(nil, err.Error()))
		return
	}
	id := int(hello.Client)
	if id < 0 || id >= len(s.sessions) {
		WriteFrame(c, AppendError(nil, fmt.Sprintf("server: unknown client id %d (serving %d)", id, len(s.sessions))))
		return
	}
	if s.refuseHello(id) {
		WriteFrame(c, AppendError(nil, "server: partitioned"))
		return
	}

	sess := s.sessions[id]
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if hello.Done > sess.applied {
		WriteFrame(c, AppendError(nil, fmt.Sprintf(
			"server: client %d claims %d ops done, server applied %d — lost commit", id, hello.Done, sess.applied)))
		return
	}
	if err := WriteFrame(c, AppendHelloAck(nil, HelloAck{
		Applied:    sess.applied,
		LastResp:   sess.lastResp,
		LastTicket: sess.lastTicket,
	})); err != nil {
		return
	}

	// Reader: frames -> bounded queue. A full queue blocks the reader,
	// which stops draining the socket — backpressure rides TCP flow
	// control back to the client.
	reqCh := make(chan Request, s.cfg.queueDepth())
	go func() {
		defer close(reqCh)
		for {
			payload, err := ReadFrame(br)
			if err != nil {
				return
			}
			req, err := DecodeRequest(payload)
			if err != nil {
				return
			}
			q := s.queued.Add(1)
			for {
				hw := s.queuedHW.Load()
				if q <= hw || s.queuedHW.CompareAndSwap(hw, q) {
					break
				}
			}
			reqCh <- req
		}
	}()
	// The reader exits only via read error, which conn close guarantees;
	// draining the queue afterwards keeps the queued counter exact.
	defer func() {
		c.Close()
		for range reqCh {
			s.queued.Add(-1)
		}
	}()

	slowUS := s.cfg.NetFaults.SlowUS(id)
	for req := range reqCh {
		s.queued.Add(-1)
		if s.stop.Load() {
			return
		}
		// Read-side seam: a triggered drop or an active partition severs
		// before the operation is processed — the client resends after
		// reconnecting.
		if s.sever(id) {
			return
		}
		var resp Response
		switch {
		case req.OpIndex == sess.applied:
			op := req.Op
			// inflight before the stamp: see session.inflight.
			sess.inflight.Store(true)
			stamp := s.seq.Load()
			sess.shard.PushInvoke(stamp, op)
			r, ticket, err := s.cfg.Object.Apply(id, op, &s.seq)
			if err != nil {
				sess.inflight.Store(false)
				WriteFrame(c, AppendError(nil, fmt.Sprintf("server: apply: %v", err)))
				return
			}
			sess.shard.PushCommit(ticket, r, op)
			sess.applied++
			sess.lastResp, sess.lastTicket = r, ticket
			sess.inflight.Store(false)
			resp = Response{OpIndex: req.OpIndex, Resp: r, Ticket: ticket}
		case sess.applied > 0 && req.OpIndex == sess.applied-1:
			// Retry of the last applied operation: replay the cache, never
			// re-apply, never re-record.
			resp = Response{OpIndex: req.OpIndex, Resp: sess.lastResp, Ticket: sess.lastTicket}
		default:
			WriteFrame(c, AppendError(nil, fmt.Sprintf(
				"server: client %d op index %d out of sequence (applied %d)", id, req.OpIndex, sess.applied)))
			return
		}
		// Write-side seam: drops and partitions can cut between the apply
		// and the response — the case the resume cache exists for; slow
		// links delay every response.
		if s.sever(id) {
			return
		}
		if slowUS > 0 {
			time.Sleep(time.Duration(slowUS) * time.Microsecond)
		}
		if err := WriteFrame(c, AppendResponse(nil, resp)); err != nil {
			return
		}
	}
}
