package server

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/spec"
)

func TestProtoRoundTrips(t *testing.T) {
	h := Hello{Client: 7, Done: 123456}
	if got, err := DecodeHello(AppendHello(nil, h)); err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	a := HelloAck{Applied: 42, LastResp: -7, LastTicket: 999}
	if got, err := DecodeHelloAck(AppendHelloAck(nil, a)); err != nil || got != a {
		t.Fatalf("hello-ack round trip: %+v, %v", got, err)
	}
	r := Request{OpIndex: 5, Op: spec.MakeOp1(spec.MethodWrite, -3)}
	if got, err := DecodeRequest(AppendRequest(nil, r)); err != nil || got != r {
		t.Fatalf("request round trip: %+v, %v", got, err)
	}
	resp := Response{OpIndex: 5, Resp: -3, Ticket: 88}
	if got, err := DecodeResponse(AppendResponse(nil, resp)); err != nil || got != resp {
		t.Fatalf("response round trip: %+v, %v", got, err)
	}
	if text, ok := DecodeError(AppendError(nil, "boom")); !ok || text != "boom" {
		t.Fatalf("error round trip: %q, %v", text, ok)
	}
}

func TestProtoRoundTripQuick(t *testing.T) {
	f := func(opIndex uint64, resp int64, ticket uint64, arg int64, nargs uint8) bool {
		op := spec.MakeOp(spec.MethodFetchInc)
		if nargs%2 == 1 {
			op = spec.MakeOp1(spec.MethodWrite, arg)
		}
		r := Request{OpIndex: opIndex, Op: op}
		got, err := DecodeRequest(AppendRequest(nil, r))
		if err != nil || got != r {
			return false
		}
		rs := Response{OpIndex: opIndex, Resp: resp, Ticket: ticket}
		gotR, err := DecodeResponse(AppendResponse(nil, rs))
		return err == nil && gotR == rs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payload := AppendRequest(nil, Request{OpIndex: 3, Op: spec.MakeOp(spec.MethodFetchInc)})
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)
	got, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame payload diverged")
	}
	// Any flipped payload byte must fail the CRC.
	for i := 8; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatalf("flipped byte %d went unnoticed", i)
		}
	}
}
