package spec

// Object pairs a type with a chosen initial state: one shared object
// instance as deployed in a system. The paper's implementations provide a
// programme "for each q0 in Q0"; an Object fixes that q0.
type Object struct {
	// Type is the object's sequential specification.
	Type Type
	// Init is the initial state; it must be a valid state of Type.
	Init State
}

// NewObject returns an Object of type t initialized to t's canonical
// initial state.
func NewObject(t Type) Object { return Object{Type: t, Init: t.Init()} }
