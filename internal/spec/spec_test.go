package spec

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{MakeOp("read"), "read"},
		{MakeOp1("write", 5), "write(5)"},
		{MakeOp1("write", -3), "write(-3)"},
		{MakeOp2("cas", 1, 2), "cas(1,2)"},
		{MakeOp("fetchinc"), "fetchinc"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op%+v.String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	tests := []struct {
		in      string
		want    Op
		wantErr bool
	}{
		{in: "read", want: MakeOp("read")},
		{in: "write(5)", want: MakeOp1("write", 5)},
		{in: "write(-3)", want: MakeOp1("write", -3)},
		{in: "cas(1,2)", want: MakeOp2("cas", 1, 2)},
		{in: "cas(1, 2)", want: MakeOp2("cas", 1, 2)},
		{in: "noargs()", want: MakeOp("noargs")},
		{in: "", wantErr: true},
		{in: "bad(", wantErr: true},
		{in: "(5)", wantErr: true},
		{in: "f(1,2,3)", wantErr: true},
		{in: "f(x)", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseOp(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseOp(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseOp(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseOp(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	f := func(method uint8, a, b int64, nargs uint8) bool {
		methods := []string{"read", "write", "cas", "fetchinc", "propose"}
		m := methods[int(method)%len(methods)]
		var op Op
		switch nargs % 3 {
		case 0:
			op = MakeOp(m)
		case 1:
			op = MakeOp1(m, a)
		case 2:
			op = MakeOp2(m, a, b)
		}
		parsed, err := ParseOp(op.String())
		return err == nil && parsed == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegister(t *testing.T) {
	r := Register{InitVal: 7}
	s := r.Init()
	outs := r.Step(s, MakeOp(MethodRead))
	if len(outs) != 1 || outs[0].Resp != 7 || outs[0].Next != int64(7) {
		t.Fatalf("read in init state: %+v", outs)
	}
	outs = r.Step(s, MakeOp1(MethodWrite, 42))
	if len(outs) != 1 || outs[0].Resp != 0 || outs[0].Next != int64(42) {
		t.Fatalf("write(42): %+v", outs)
	}
	outs = r.Step(outs[0].Next, MakeOp(MethodRead))
	if len(outs) != 1 || outs[0].Resp != 42 {
		t.Fatalf("read after write(42): %+v", outs)
	}
	if got := r.Step(s, MakeOp(MethodFetchInc)); got != nil {
		t.Errorf("register accepted fetchinc: %+v", got)
	}
	if got := r.Step("bogus", MakeOp(MethodRead)); got != nil {
		t.Errorf("register accepted bogus state: %+v", got)
	}
	if got := r.Step(s, MakeOp1(MethodRead, 1)); got != nil {
		t.Errorf("register accepted read with argument: %+v", got)
	}
}

func TestFetchInc(t *testing.T) {
	f := FetchInc{}
	s := f.Init()
	for want := int64(0); want < 5; want++ {
		outs := f.Step(s, MakeOp(MethodFetchInc))
		if len(outs) != 1 {
			t.Fatalf("fetchinc outcome count = %d", len(outs))
		}
		if outs[0].Resp != want {
			t.Fatalf("fetchinc #%d returned %d", want, outs[0].Resp)
		}
		s = outs[0].Next
	}
	if got := f.Step(s, MakeOp(MethodRead)); got != nil {
		t.Errorf("fetchinc accepted read: %+v", got)
	}
}

func TestConsensus(t *testing.T) {
	c := Consensus{}
	s := c.Init()
	outs := c.Step(s, MakeOp1(MethodPropose, 3))
	if len(outs) != 1 || outs[0].Resp != 3 {
		t.Fatalf("first propose(3): %+v", outs)
	}
	s = outs[0].Next
	outs = c.Step(s, MakeOp1(MethodPropose, 9))
	if len(outs) != 1 || outs[0].Resp != 3 {
		t.Fatalf("second propose(9) should return 3: %+v", outs)
	}
	if got := c.Step(s, MakeOp1(MethodPropose, -2)); got != nil {
		t.Errorf("consensus accepted negative proposal: %+v", got)
	}
}

func TestTestSet(t *testing.T) {
	ts := TestSet{}
	s := ts.Init()
	outs := ts.Step(s, MakeOp(MethodTestSet))
	if len(outs) != 1 || outs[0].Resp != 0 {
		t.Fatalf("first testset: %+v", outs)
	}
	s = outs[0].Next
	for i := 0; i < 3; i++ {
		outs = ts.Step(s, MakeOp(MethodTestSet))
		if len(outs) != 1 || outs[0].Resp != 1 {
			t.Fatalf("testset #%d: %+v", i+2, outs)
		}
		s = outs[0].Next
	}
}

func TestCAS(t *testing.T) {
	c := CAS{}
	s := c.Init()
	outs := c.Step(s, MakeOp2(MethodCAS, 0, 5))
	if len(outs) != 1 || outs[0].Resp != 1 || outs[0].Next != int64(5) {
		t.Fatalf("cas(0,5) from 0: %+v", outs)
	}
	s = outs[0].Next
	outs = c.Step(s, MakeOp2(MethodCAS, 0, 9))
	if len(outs) != 1 || outs[0].Resp != 0 || outs[0].Next != int64(5) {
		t.Fatalf("failed cas(0,9) from 5: %+v", outs)
	}
	outs = c.Step(s, MakeOp(MethodRead))
	if len(outs) != 1 || outs[0].Resp != 5 {
		t.Fatalf("read from 5: %+v", outs)
	}
}

func TestMaxRegister(t *testing.T) {
	m := MaxRegister{}
	s := m.Init()
	s = m.Step(s, MakeOp1(MethodWriteMax, 4))[0].Next
	s = m.Step(s, MakeOp1(MethodWriteMax, 2))[0].Next
	outs := m.Step(s, MakeOp(MethodRead))
	if outs[0].Resp != 4 {
		t.Fatalf("read after writemax(4),writemax(2) = %d, want 4", outs[0].Resp)
	}
}

func TestQueue(t *testing.T) {
	q := Queue{}
	s := q.Init()
	outs := q.Step(s, MakeOp(MethodDeq))
	if outs[0].Resp != EmptyDeq {
		t.Fatalf("deq on empty = %d", outs[0].Resp)
	}
	s = q.Step(s, MakeOp1(MethodEnq, 10))[0].Next
	s = q.Step(s, MakeOp1(MethodEnq, 20))[0].Next
	outs = q.Step(s, MakeOp(MethodDeq))
	if outs[0].Resp != 10 {
		t.Fatalf("first deq = %d, want 10", outs[0].Resp)
	}
	s = outs[0].Next
	outs = q.Step(s, MakeOp(MethodDeq))
	if outs[0].Resp != 20 {
		t.Fatalf("second deq = %d, want 20", outs[0].Resp)
	}
	if outs[0].Next != "" {
		t.Fatalf("queue not empty after draining: %v", outs[0].Next)
	}
}

func TestQueueFIFOProperty(t *testing.T) {
	q := Queue{}
	f := func(vals []int64) bool {
		if len(vals) > 12 {
			vals = vals[:12]
		}
		s := q.Init()
		for _, v := range vals {
			s = q.Step(s, MakeOp1(MethodEnq, v))[0].Next
		}
		for _, want := range vals {
			outs := q.Step(s, MakeOp(MethodDeq))
			if len(outs) != 1 || outs[0].Resp != want {
				return false
			}
			s = outs[0].Next
		}
		return q.Step(s, MakeOp(MethodDeq))[0].Resp == EmptyDeq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegisterArray(t *testing.T) {
	ra := RegisterArray{InitVal: NoValue}
	s := ra.Init()
	outs := ra.Step(s, MakeOp1(MethodRead, 3))
	if outs[0].Resp != NoValue {
		t.Fatalf("read(3) on fresh array = %d, want %d", outs[0].Resp, NoValue)
	}
	s = ra.Step(s, MakeOp2(MethodWrite, 3, 77))[0].Next
	s = ra.Step(s, MakeOp2(MethodWrite, 1, 11))[0].Next
	if got := ra.Step(s, MakeOp1(MethodRead, 3))[0].Resp; got != 77 {
		t.Fatalf("read(3) = %d, want 77", got)
	}
	if got := ra.Step(s, MakeOp1(MethodRead, 1))[0].Resp; got != 11 {
		t.Fatalf("read(1) = %d, want 11", got)
	}
	if got := ra.Step(s, MakeOp1(MethodRead, 0))[0].Resp; got != NoValue {
		t.Fatalf("read(0) = %d, want %d", got, NoValue)
	}
	if got := ra.Step(s, MakeOp1(MethodRead, -1)); got != nil {
		t.Errorf("read(-1) accepted: %+v", got)
	}
}

func TestRegisterArrayStateCanonical(t *testing.T) {
	// Writing cells in different orders must produce the same encoded state;
	// checker memoization depends on canonical state encodings.
	ra := RegisterArray{InitVal: NoValue}
	s1 := ra.Init()
	s1 = ra.Step(s1, MakeOp2(MethodWrite, 2, 5))[0].Next
	s1 = ra.Step(s1, MakeOp2(MethodWrite, 0, 9))[0].Next
	s2 := ra.Init()
	s2 = ra.Step(s2, MakeOp2(MethodWrite, 0, 9))[0].Next
	s2 = ra.Step(s2, MakeOp2(MethodWrite, 2, 5))[0].Next
	if s1 != s2 {
		t.Fatalf("non-canonical states: %v vs %v", s1, s2)
	}
}

func TestTotality(t *testing.T) {
	types := []Type{
		Register{}, FetchInc{}, Consensus{}, TestSet{}, CAS{}, MaxRegister{},
	}
	for _, typ := range types {
		total, err := Total(typ, 1000)
		if err != nil {
			// Unbounded-state types exhaust the bound; that is acceptable
			// for fetchinc/maxregister whose state grows.
			if typ.Name() == "fetchinc" || typ.Name() == "maxregister" {
				continue
			}
			t.Errorf("Total(%s): %v", typ.Name(), err)
			continue
		}
		if !total {
			t.Errorf("Total(%s) = false, want true", typ.Name())
		}
	}
}

func TestReachable(t *testing.T) {
	states, err := Reachable(TestSet{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("testset reachable states = %d, want 2", len(states))
	}
	states, err = Reachable(Consensus{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 { // undecided, decided-0, decided-1
		t.Fatalf("consensus reachable states = %d, want 3", len(states))
	}
}

func TestDeterministicFlags(t *testing.T) {
	det := []Type{Register{}, FetchInc{}, Consensus{}, TestSet{}, CAS{}, MaxRegister{}, Queue{}, RegisterArray{}}
	for _, typ := range det {
		if !typ.Deterministic() {
			t.Errorf("%s.Deterministic() = false, want true", typ.Name())
		}
	}
}

func TestTableType(t *testing.T) {
	ct := ConstantType(42)
	if !ct.Deterministic() {
		t.Error("constant type should be deterministic")
	}
	outs := ct.Step(ct.Init(), MakeOp("get"))
	if len(outs) != 1 || outs[0].Resp != 42 {
		t.Fatalf("constant get: %+v", outs)
	}
	if got := ct.Step(ct.Init(), MakeOp("other")); len(got) != 0 {
		t.Errorf("constant accepted unknown op: %+v", got)
	}
	if got := ct.Step(int64(5), MakeOp("get")); len(got) != 0 {
		t.Errorf("constant accepted out-of-range state: %+v", got)
	}
	total, err := Total(ct, 10)
	if err != nil || !total {
		t.Errorf("constant Total = %v, %v", total, err)
	}
}

func TestTableTypeNondeterministic(t *testing.T) {
	flip := MakeOp("flip")
	nd := &TableType{
		TypeName: "coin",
		NStates:  1,
		Ops:      []Op{flip},
		Delta: map[TableKey][]Outcome{
			{State: 0, Op: flip}: {
				{Resp: 0, Next: int64(0)},
				{Resp: 1, Next: int64(0)},
			},
		},
	}
	if nd.Deterministic() {
		t.Error("coin type should be nondeterministic")
	}
	if got := len(nd.Step(nd.Init(), flip)); got != 2 {
		t.Errorf("coin outcomes = %d, want 2", got)
	}
}

func TestDeterminismIsStable(t *testing.T) {
	// Step must be a pure function: identical inputs give identical outputs.
	f := func(writes []int64) bool {
		if len(writes) > 8 {
			writes = writes[:8]
		}
		r := Register{}
		s := r.Init()
		for _, w := range writes {
			a := r.Step(s, MakeOp1(MethodWrite, w))
			b := r.Step(s, MakeOp1(MethodWrite, w))
			if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
				return false
			}
			s = a[0].Next
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
