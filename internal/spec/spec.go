// Package spec implements sequential specifications of shared-object types
// as defined in Section 3 of Guerraoui & Ruppert, "A Paradox of Eventual
// Linearizability in Shared Memory" (PODC 2014).
//
// A type is a tuple (Q, Q0, INV, RES, delta): a set of states, a set of
// initial states, sets of operation invocations and responses, and a
// transition relation delta ⊆ Q × INV × RES × Q. The paper assumes
// transition relations are Turing-computable; here they are Go functions.
// All concrete types in this package have finite non-determinism: for each
// state and operation there are finitely many (response, next-state) pairs.
//
// Conventions used throughout the module:
//
//   - Operation names include their arguments (as in the paper); an Op value
//     is a method name plus up to two int64 arguments.
//   - Responses are int64 values. Operations with "ack"-style responses
//     (e.g. register writes) return 0 by convention.
//   - States are immutable, comparable Go values (see State).
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// State is an immutable snapshot of an object's abstract state.
//
// States must be comparable Go values (integers, strings, or small structs
// of comparable fields) so that they can serve as map keys in checker
// memoization tables. Composite states (e.g. queue contents) are encoded
// canonically as strings.
type State = any

// Op is an operation invocation: a method name together with its arguments.
// As in the paper, the "name" of an operation includes all of its arguments,
// so two Op values are the same invocation if and only if they are equal.
type Op struct {
	// Method is the operation's method name, e.g. "read", "write",
	// "fetchinc", "propose", "cas".
	Method string
	// Args holds up to two integer arguments; entries beyond NArgs are 0.
	Args [2]int64
	// NArgs is the number of meaningful entries in Args.
	NArgs int
}

// MakeOp returns an operation with no arguments.
func MakeOp(method string) Op { return Op{Method: method} }

// MakeOp1 returns an operation with one argument.
func MakeOp1(method string, a int64) Op {
	return Op{Method: method, Args: [2]int64{a, 0}, NArgs: 1}
}

// MakeOp2 returns an operation with two arguments.
func MakeOp2(method string, a, b int64) Op {
	return Op{Method: method, Args: [2]int64{a, b}, NArgs: 2}
}

// String renders the operation in the conventional "method(args)" form.
func (o Op) String() string {
	if o.NArgs == 0 {
		return o.Method
	}
	parts := make([]string, o.NArgs)
	for i := 0; i < o.NArgs; i++ {
		parts[i] = strconv.FormatInt(o.Args[i], 10)
	}
	return o.Method + "(" + strings.Join(parts, ",") + ")"
}

// ParseOp parses the output of Op.String: "method" or "method(a)" or
// "method(a,b)".
func ParseOp(s string) (Op, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if s == "" {
			return Op{}, fmt.Errorf("parse op: empty string")
		}
		return MakeOp(s), nil
	}
	if !strings.HasSuffix(s, ")") || open == 0 {
		return Op{}, fmt.Errorf("parse op %q: malformed argument list", s)
	}
	method := s[:open]
	argstr := s[open+1 : len(s)-1]
	if argstr == "" {
		return MakeOp(method), nil
	}
	parts := strings.Split(argstr, ",")
	if len(parts) > 2 {
		return Op{}, fmt.Errorf("parse op %q: more than two arguments", s)
	}
	op := Op{Method: method, NArgs: len(parts)}
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("parse op %q: argument %d: %w", s, i, err)
		}
		op.Args[i] = v
	}
	return op, nil
}

// Outcome is one (response, next-state) pair permitted by a transition
// relation for a given (state, operation).
type Outcome struct {
	Resp int64
	Next State
}

// Type is a sequential object type. Implementations must be deterministic
// functions of (state, op): Step must always return the same outcome set for
// the same inputs, and every returned outcome's Next state must be a valid
// State (immutable and comparable).
type Type interface {
	// Name returns a short identifier for the type, e.g. "register".
	Name() string
	// Init returns the canonical initial state q0.
	Init() State
	// Step returns every (response, next-state) pair permitted by delta
	// when op is applied in state s. An empty slice means the operation is
	// not applicable in s (delta contains no such transition).
	Step(s State, op Op) []Outcome
	// Deterministic reports whether every (state, op) pair admits at most
	// one outcome.
	Deterministic() bool
}

// DetStepper is optionally implemented by deterministic types that can
// report their unique (response, next-state) outcome without allocating the
// Step slice. The checkers and the simulation runtime prefer it on hot
// paths; Step and StepDet must agree (Step returns exactly the outcome
// StepDet reports, or an empty slice when ok is false).
type DetStepper interface {
	// StepDet returns the unique outcome of op in state s, or ok=false when
	// the operation is not applicable.
	StepDet(s State, op Op) (Outcome, bool)
}

// OpEnumerator is implemented by types whose (restricted) operation set can
// be enumerated. Enumerability enables exhaustive constructions such as the
// triviality decision procedure of Proposition 14 and random workload
// generation.
type OpEnumerator interface {
	// EnumOps returns a finite, representative operation set.
	EnumOps() []Op
}

// Total reports whether, in every state reachable from init within the
// given exploration bound, every enumerated operation has at least one
// outcome. The paper's examples are all total; totality guarantees that any
// finite history is t-linearizable for t = |H| (Section 3.2).
func Total(t Type, maxStates int) (bool, error) {
	enum, ok := t.(OpEnumerator)
	if !ok {
		return false, fmt.Errorf("type %s does not enumerate operations", t.Name())
	}
	ops := enum.EnumOps()
	seen := map[State]bool{t.Init(): true}
	frontier := []State{t.Init()}
	for len(frontier) > 0 {
		if len(seen) > maxStates {
			return false, fmt.Errorf("type %s: state bound %d exceeded", t.Name(), maxStates)
		}
		s := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, op := range ops {
			outs := t.Step(s, op)
			if len(outs) == 0 {
				return false, nil
			}
			for _, o := range outs {
				if !seen[o.Next] {
					seen[o.Next] = true
					frontier = append(frontier, o.Next)
				}
			}
		}
	}
	return true, nil
}

// Reachable returns all states reachable from init via enumerated
// operations, bounded by maxStates.
func Reachable(t Type, maxStates int) ([]State, error) {
	enum, ok := t.(OpEnumerator)
	if !ok {
		return nil, fmt.Errorf("type %s does not enumerate operations", t.Name())
	}
	ops := enum.EnumOps()
	seen := map[State]bool{t.Init(): true}
	order := []State{t.Init()}
	for i := 0; i < len(order); i++ {
		if len(order) > maxStates {
			return nil, fmt.Errorf("type %s: state bound %d exceeded", t.Name(), maxStates)
		}
		for _, op := range ops {
			for _, o := range t.Step(order[i], op) {
				if !seen[o.Next] {
					seen[o.Next] = true
					order = append(order, o.Next)
				}
			}
		}
	}
	return order, nil
}
