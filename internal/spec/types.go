package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Method-name constants shared by the concrete types. Operation "names"
// include arguments (see Op); these constants are the method components.
const (
	MethodRead     = "read"
	MethodWrite    = "write"
	MethodFetchInc = "fetchinc"
	MethodPropose  = "propose"
	MethodTestSet  = "testset"
	MethodCAS      = "cas"
	MethodWriteMax = "writemax"
	MethodEnq      = "enq"
	MethodDeq      = "deq"
	MethodAppend   = "append"
)

// EmptyDeq is the response returned by a dequeue on an empty queue. Using an
// in-band sentinel keeps the queue type total (every op applicable in every
// state), which Section 3.2 relies on: total types make every finite history
// trivially t-linearizable for t = |H|.
const EmptyDeq int64 = -1

// NoValue is the conventional "bottom" value used by consensus objects and
// the register arrays of Figure 1 (the paper's ⊥). It must lie outside the
// application value domain; all examples use non-negative proposal values.
const NoValue int64 = -1

// detStep adapts a DetStepper to the Step slice contract: one allocation
// for callers of Step, none for callers of StepDet.
func detStep(d DetStepper, s State, op Op) []Outcome {
	out, ok := d.StepDet(s, op)
	if !ok {
		return nil
	}
	return []Outcome{out}
}

// ----------------------------------------------------------------------------
// Read/write register.

// Register is a linearizable read/write register specification holding an
// int64. read returns the current value; write(v) returns 0 and sets it.
type Register struct {
	// InitVal is the initial register value (q0).
	InitVal int64
	// Domain restricts the values enumerated by EnumOps (not the values
	// accepted by Step). A nil Domain enumerates writes of 0 and 1.
	Domain []int64
}

var _ Type = Register{}
var _ OpEnumerator = Register{}

// Name implements Type.
func (Register) Name() string { return "register" }

// Init implements Type.
func (r Register) Init() State { return r.InitVal }

// Deterministic implements Type.
func (Register) Deterministic() bool { return true }

// Step implements Type.
func (r Register) Step(s State, op Op) []Outcome {
	return detStep(r, s, op)
}

// StepDet implements DetStepper.
func (Register) StepDet(s State, op Op) (Outcome, bool) {
	v, ok := s.(int64)
	if !ok {
		return Outcome{}, false
	}
	switch op.Method {
	case MethodRead:
		if op.NArgs != 0 {
			return Outcome{}, false
		}
		return Outcome{Resp: v, Next: v}, true
	case MethodWrite:
		if op.NArgs != 1 {
			return Outcome{}, false
		}
		return Outcome{Resp: 0, Next: op.Args[0]}, true
	default:
		return Outcome{}, false
	}
}

// EnumOps implements OpEnumerator.
func (r Register) EnumOps() []Op {
	dom := r.Domain
	if dom == nil {
		dom = []int64{0, 1}
	}
	ops := make([]Op, 0, len(dom)+1)
	ops = append(ops, MakeOp(MethodRead))
	for _, v := range dom {
		ops = append(ops, MakeOp1(MethodWrite, v))
	}
	return ops
}

// ----------------------------------------------------------------------------
// Fetch&increment counter.

// FetchInc is the fetch&increment counter of Section 3.2: it stores a
// natural number and provides a single operation, fetchinc, which adds one
// to the stored value and returns the old value.
type FetchInc struct {
	// InitVal is the initial counter value.
	InitVal int64
}

var _ Type = FetchInc{}
var _ OpEnumerator = FetchInc{}

// Name implements Type.
func (FetchInc) Name() string { return "fetchinc" }

// Init implements Type.
func (f FetchInc) Init() State { return f.InitVal }

// Deterministic implements Type.
func (FetchInc) Deterministic() bool { return true }

// Step implements Type.
func (f FetchInc) Step(s State, op Op) []Outcome {
	return detStep(f, s, op)
}

// StepDet implements DetStepper.
func (FetchInc) StepDet(s State, op Op) (Outcome, bool) {
	v, ok := s.(int64)
	if !ok {
		return Outcome{}, false
	}
	if op.Method != MethodFetchInc || op.NArgs != 0 {
		return Outcome{}, false
	}
	return Outcome{Resp: v, Next: v + 1}, true
}

// EnumOps implements OpEnumerator.
func (FetchInc) EnumOps() []Op { return []Op{MakeOp(MethodFetchInc)} }

// ----------------------------------------------------------------------------
// Consensus.

// Consensus is the one-shot consensus object of Section 4: propose(v)
// returns the argument of the first propose operation to be linearized.
// Proposal values must be non-negative (NoValue marks "undecided").
type Consensus struct {
	// Domain restricts the proposals enumerated by EnumOps; nil means {0,1}.
	Domain []int64
}

var _ Type = Consensus{}
var _ OpEnumerator = Consensus{}

// Name implements Type.
func (Consensus) Name() string { return "consensus" }

// Init implements Type.
func (Consensus) Init() State { return NoValue }

// Deterministic implements Type.
func (Consensus) Deterministic() bool { return true }

// Step implements Type.
func (c Consensus) Step(s State, op Op) []Outcome {
	return detStep(c, s, op)
}

// StepDet implements DetStepper.
func (Consensus) StepDet(s State, op Op) (Outcome, bool) {
	decided, ok := s.(int64)
	if !ok {
		return Outcome{}, false
	}
	if op.Method != MethodPropose || op.NArgs != 1 || op.Args[0] < 0 {
		return Outcome{}, false
	}
	if decided == NoValue {
		return Outcome{Resp: op.Args[0], Next: op.Args[0]}, true
	}
	return Outcome{Resp: decided, Next: decided}, true
}

// EnumOps implements OpEnumerator.
func (c Consensus) EnumOps() []Op {
	dom := c.Domain
	if dom == nil {
		dom = []int64{0, 1}
	}
	ops := make([]Op, 0, len(dom))
	for _, v := range dom {
		ops = append(ops, MakeOp1(MethodPropose, v))
	}
	return ops
}

// ----------------------------------------------------------------------------
// Test&set.

// TestSet is the test&set object of Section 4: the first testset operation
// returns 0 and sets the object; all later operations return 1.
type TestSet struct{}

var _ Type = TestSet{}
var _ OpEnumerator = TestSet{}

// Name implements Type.
func (TestSet) Name() string { return "testset" }

// Init implements Type.
func (TestSet) Init() State { return int64(0) }

// Deterministic implements Type.
func (TestSet) Deterministic() bool { return true }

// Step implements Type.
func (t TestSet) Step(s State, op Op) []Outcome {
	return detStep(t, s, op)
}

// StepDet implements DetStepper.
func (TestSet) StepDet(s State, op Op) (Outcome, bool) {
	set, ok := s.(int64)
	if !ok {
		return Outcome{}, false
	}
	if op.Method != MethodTestSet || op.NArgs != 0 {
		return Outcome{}, false
	}
	return Outcome{Resp: set, Next: int64(1)}, true
}

// EnumOps implements OpEnumerator.
func (TestSet) EnumOps() []Op { return []Op{MakeOp(MethodTestSet)} }

// ----------------------------------------------------------------------------
// Compare&swap.

// CAS is a compare&swap word, the hardware primitive the paper's
// introduction builds fetch&increment from. read returns the current value;
// cas(old,new) installs new and returns 1 if the value equals old, and
// otherwise returns 0 leaving the value unchanged.
type CAS struct {
	// InitVal is the initial value.
	InitVal int64
	// Domain restricts EnumOps (nil means {0,1}).
	Domain []int64
}

var _ Type = CAS{}
var _ OpEnumerator = CAS{}

// Name implements Type.
func (CAS) Name() string { return "cas" }

// Init implements Type.
func (c CAS) Init() State { return c.InitVal }

// Deterministic implements Type.
func (CAS) Deterministic() bool { return true }

// Step implements Type.
func (c CAS) Step(s State, op Op) []Outcome {
	return detStep(c, s, op)
}

// StepDet implements DetStepper.
func (CAS) StepDet(s State, op Op) (Outcome, bool) {
	v, ok := s.(int64)
	if !ok {
		return Outcome{}, false
	}
	switch op.Method {
	case MethodRead:
		if op.NArgs != 0 {
			return Outcome{}, false
		}
		return Outcome{Resp: v, Next: v}, true
	case MethodCAS:
		if op.NArgs != 2 {
			return Outcome{}, false
		}
		if v == op.Args[0] {
			return Outcome{Resp: 1, Next: op.Args[1]}, true
		}
		return Outcome{Resp: 0, Next: v}, true
	default:
		return Outcome{}, false
	}
}

// EnumOps implements OpEnumerator.
func (c CAS) EnumOps() []Op {
	dom := c.Domain
	if dom == nil {
		dom = []int64{0, 1}
	}
	ops := []Op{MakeOp(MethodRead)}
	for _, a := range dom {
		for _, b := range dom {
			ops = append(ops, MakeOp2(MethodCAS, a, b))
		}
	}
	return ops
}

// ----------------------------------------------------------------------------
// Max register.

// MaxRegister stores the maximum value ever written. read returns the
// current maximum; writemax(v) returns 0 and raises the value to at least v.
type MaxRegister struct {
	// InitVal is the initial maximum.
	InitVal int64
	// Domain restricts EnumOps (nil means {0,1,2}).
	Domain []int64
}

var _ Type = MaxRegister{}
var _ OpEnumerator = MaxRegister{}

// Name implements Type.
func (MaxRegister) Name() string { return "maxregister" }

// Init implements Type.
func (m MaxRegister) Init() State { return m.InitVal }

// Deterministic implements Type.
func (MaxRegister) Deterministic() bool { return true }

// Step implements Type.
func (m MaxRegister) Step(s State, op Op) []Outcome {
	return detStep(m, s, op)
}

// StepDet implements DetStepper.
func (MaxRegister) StepDet(s State, op Op) (Outcome, bool) {
	v, ok := s.(int64)
	if !ok {
		return Outcome{}, false
	}
	switch op.Method {
	case MethodRead:
		if op.NArgs != 0 {
			return Outcome{}, false
		}
		return Outcome{Resp: v, Next: v}, true
	case MethodWriteMax:
		if op.NArgs != 1 {
			return Outcome{}, false
		}
		next := v
		if op.Args[0] > next {
			next = op.Args[0]
		}
		return Outcome{Resp: 0, Next: next}, true
	default:
		return Outcome{}, false
	}
}

// EnumOps implements OpEnumerator.
func (m MaxRegister) EnumOps() []Op {
	dom := m.Domain
	if dom == nil {
		dom = []int64{0, 1, 2}
	}
	ops := []Op{MakeOp(MethodRead)}
	for _, v := range dom {
		ops = append(ops, MakeOp1(MethodWriteMax, v))
	}
	return ops
}

// ----------------------------------------------------------------------------
// FIFO queue.

// Queue is a FIFO queue of int64 values. enq(v) returns 0; deq returns the
// oldest value, or EmptyDeq if the queue is empty. Queue states are encoded
// as comma-separated strings so that they are comparable.
type Queue struct {
	// Domain restricts EnumOps (nil means {0,1}).
	Domain []int64
}

var _ Type = Queue{}
var _ OpEnumerator = Queue{}

// Name implements Type.
func (Queue) Name() string { return "queue" }

// Init implements Type.
func (Queue) Init() State { return "" }

// Deterministic implements Type.
func (Queue) Deterministic() bool { return true }

// Step implements Type.
func (q Queue) Step(s State, op Op) []Outcome {
	return detStep(q, s, op)
}

// StepDet implements DetStepper.
func (Queue) StepDet(s State, op Op) (Outcome, bool) {
	enc, ok := s.(string)
	if !ok {
		return Outcome{}, false
	}
	switch op.Method {
	case MethodEnq:
		if op.NArgs != 1 {
			return Outcome{}, false
		}
		next := strconv.FormatInt(op.Args[0], 10)
		if enc != "" {
			next = enc + "," + next
		}
		return Outcome{Resp: 0, Next: next}, true
	case MethodDeq:
		if op.NArgs != 0 {
			return Outcome{}, false
		}
		if enc == "" {
			return Outcome{Resp: EmptyDeq, Next: ""}, true
		}
		head := enc
		rest := ""
		if i := strings.IndexByte(enc, ','); i >= 0 {
			head, rest = enc[:i], enc[i+1:]
		}
		v, err := strconv.ParseInt(head, 10, 64)
		if err != nil {
			return Outcome{}, false
		}
		return Outcome{Resp: v, Next: rest}, true
	default:
		return Outcome{}, false
	}
}

// EnumOps implements OpEnumerator.
func (q Queue) EnumOps() []Op {
	dom := q.Domain
	if dom == nil {
		dom = []int64{0, 1}
	}
	ops := []Op{MakeOp(MethodDeq)}
	for _, v := range dom {
		ops = append(ops, MakeOp1(MethodEnq, v))
	}
	return ops
}

// ----------------------------------------------------------------------------
// Append-only operation log.

// OpLog is a linearizable append-only log of non-negative int64 entries —
// the shared base object of the stabilizing-log construction
// (internal/core/stablog, after arXiv 1512.08258). append(v) adds an entry
// and returns its position; read(i) returns the entry at position i, or
// NoValue when i is past the end. Entries must be non-negative so the
// NoValue sentinel stays out of band. States are encoded as comma-separated
// strings, like Queue, so that they are comparable.
type OpLog struct{}

var _ Type = OpLog{}
var _ OpEnumerator = OpLog{}

// Name implements Type.
func (OpLog) Name() string { return "oplog" }

// Init implements Type.
func (OpLog) Init() State { return "" }

// Deterministic implements Type.
func (OpLog) Deterministic() bool { return true }

// Step implements Type.
func (l OpLog) Step(s State, op Op) []Outcome {
	return detStep(l, s, op)
}

// StepDet implements DetStepper.
func (OpLog) StepDet(s State, op Op) (Outcome, bool) {
	enc, ok := s.(string)
	if !ok {
		return Outcome{}, false
	}
	switch op.Method {
	case MethodAppend:
		if op.NArgs != 1 || op.Args[0] < 0 {
			return Outcome{}, false
		}
		entry := strconv.FormatInt(op.Args[0], 10)
		if enc == "" {
			return Outcome{Resp: 0, Next: entry}, true
		}
		return Outcome{Resp: int64(strings.Count(enc, ",")) + 1, Next: enc + "," + entry}, true
	case MethodRead:
		if op.NArgs != 1 || op.Args[0] < 0 {
			return Outcome{}, false
		}
		if enc == "" {
			return Outcome{Resp: NoValue, Next: enc}, true
		}
		rest := enc
		for i := int64(0); ; i++ {
			head := rest
			if j := strings.IndexByte(rest, ','); j >= 0 {
				head, rest = rest[:j], rest[j+1:]
			} else {
				rest = ""
			}
			if i == op.Args[0] {
				v, err := strconv.ParseInt(head, 10, 64)
				if err != nil {
					return Outcome{}, false
				}
				return Outcome{Resp: v, Next: enc}, true
			}
			if rest == "" {
				return Outcome{Resp: NoValue, Next: enc}, true
			}
		}
	default:
		return Outcome{}, false
	}
}

// EnumOps implements OpEnumerator.
func (OpLog) EnumOps() []Op {
	return []Op{MakeOp1(MethodAppend, 0), MakeOp1(MethodAppend, 1), MakeOp1(MethodRead, 0)}
}

// ----------------------------------------------------------------------------
// Register array (the unbounded single-writer register families of Figure 1
// and Proposition 16, modelled as one indexed object).

// RegisterArray is an indexed family of registers exposed as a single
// object with operations read(i) and write(i,v). Each operation touches one
// cell, so a linearizable RegisterArray is equivalent to a family of
// linearizable registers; it stands in for the unbounded register arrays
// R_i[0,1,2,...] of Figure 1. Cells start at InitVal. States are encoded as
// "i:v" pairs joined by ';' in ascending index order.
type RegisterArray struct {
	// InitVal is the initial value of every cell (the paper's ⊥ for
	// announcement arrays; use NoValue).
	InitVal int64
}

var _ Type = RegisterArray{}

// Name implements Type.
func (RegisterArray) Name() string { return "regarray" }

// Init implements Type.
func (RegisterArray) Init() State { return "" }

// Deterministic implements Type.
func (RegisterArray) Deterministic() bool { return true }

// Step implements Type.
func (ra RegisterArray) Step(s State, op Op) []Outcome {
	enc, ok := s.(string)
	if !ok {
		return nil
	}
	cells, err := decodeCells(enc)
	if err != nil {
		return nil
	}
	switch op.Method {
	case MethodRead:
		if op.NArgs != 1 || op.Args[0] < 0 {
			return nil
		}
		v, present := cells[op.Args[0]]
		if !present {
			v = ra.InitVal
		}
		return []Outcome{{Resp: v, Next: enc}}
	case MethodWrite:
		if op.NArgs != 2 || op.Args[0] < 0 {
			return nil
		}
		cells[op.Args[0]] = op.Args[1]
		return []Outcome{{Resp: 0, Next: encodeCells(cells)}}
	default:
		return nil
	}
}

func decodeCells(enc string) (map[int64]int64, error) {
	cells := make(map[int64]int64)
	if enc == "" {
		return cells, nil
	}
	for _, pair := range strings.Split(enc, ";") {
		i := strings.IndexByte(pair, ':')
		if i < 0 {
			return nil, fmt.Errorf("register array state %q: missing ':'", enc)
		}
		idx, err := strconv.ParseInt(pair[:i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("register array state %q: %w", enc, err)
		}
		val, err := strconv.ParseInt(pair[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("register array state %q: %w", enc, err)
		}
		cells[idx] = val
	}
	return cells, nil
}

func encodeCells(cells map[int64]int64) string {
	if len(cells) == 0 {
		return ""
	}
	idxs := make([]int64, 0, len(cells))
	for i := range cells {
		idxs = append(idxs, i)
	}
	// Insertion sort: cell counts are small and this avoids pulling in sort
	// for a hot path.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	var b strings.Builder
	for k, i := range idxs {
		if k > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.FormatInt(i, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(cells[i], 10))
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Table-driven finite types.

// TableType is a finite type given by an explicit transition table. It is
// the workhorse of the triviality experiments (Definition 13 /
// Proposition 14): small artificial types are easiest to state as tables.
// States are int64 indices 0..NStates-1; state 0 is initial.
type TableType struct {
	// TypeName identifies the table type.
	TypeName string
	// NStates is the number of states; states are 0..NStates-1.
	NStates int64
	// Ops is the operation alphabet.
	Ops []Op
	// Delta maps (state, op) to permitted outcomes. Missing entries mean
	// the operation is not applicable. Next states must be < NStates.
	Delta map[TableKey][]Outcome
}

// TableKey indexes a TableType transition table.
type TableKey struct {
	State int64
	Op    Op
}

var _ Type = (*TableType)(nil)
var _ OpEnumerator = (*TableType)(nil)

// Name implements Type.
func (t *TableType) Name() string { return t.TypeName }

// Init implements Type.
func (t *TableType) Init() State { return int64(0) }

// Deterministic implements Type.
func (t *TableType) Deterministic() bool {
	for _, outs := range t.Delta {
		if len(outs) > 1 {
			return false
		}
	}
	return true
}

// Step implements Type.
func (t *TableType) Step(s State, op Op) []Outcome {
	v, ok := s.(int64)
	if !ok || v < 0 || v >= t.NStates {
		return nil
	}
	outs := t.Delta[TableKey{State: v, Op: op}]
	// Copy to keep the table immutable from the caller's perspective.
	cp := make([]Outcome, len(outs))
	copy(cp, outs)
	return cp
}

// EnumOps implements OpEnumerator.
func (t *TableType) EnumOps() []Op {
	cp := make([]Op, len(t.Ops))
	copy(cp, t.Ops)
	return cp
}

// ConstantType returns a trivial table type per Definition 13: a single
// operation "get" that always returns the same value in every state. It is
// implementable with no inter-process communication.
func ConstantType(val int64) *TableType {
	get := MakeOp("get")
	return &TableType{
		TypeName: "constant",
		NStates:  1,
		Ops:      []Op{get},
		Delta: map[TableKey][]Outcome{
			{State: 0, Op: get}: {{Resp: val, Next: int64(0)}},
		},
	}
}
