package spec

// Canonical byte-encoding and hashing helpers shared by every layer that
// builds configuration fingerprints (history, machine, base, sim, check).
// Keeping one implementation prevents the encodings from drifting apart —
// deduplication correctness depends on all layers agreeing byte-for-byte.

// AppendFPInt appends a fixed 8-byte little-endian encoding of v to b.
func AppendFPInt(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// FNV64 returns the 64-bit FNV-1a hash of b.
func FNV64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
