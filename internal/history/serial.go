package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/spec"
)

// jsonEvent is the JSON wire form of an Event.
type jsonEvent struct {
	Kind string `json:"kind"`
	Proc int    `json:"proc"`
	Obj  string `json:"obj"`
	Op   string `json:"op,omitempty"`
	Resp int64  `json:"resp,omitempty"`
}

// MarshalJSON encodes the history as a JSON array of events.
func (h *History) MarshalJSON() ([]byte, error) {
	out := make([]jsonEvent, 0, len(h.events))
	for _, e := range h.events {
		je := jsonEvent{Kind: e.Kind.String(), Proc: e.Proc, Obj: e.Obj}
		if e.Kind == KindInvoke {
			je.Op = e.Op.String()
		} else {
			je.Resp = e.Resp
		}
		out = append(out, je)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a JSON array of events, validating well-formedness.
func (h *History) UnmarshalJSON(data []byte) error {
	var in []jsonEvent
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decode history: %w", err)
	}
	fresh := New()
	for i, je := range in {
		e := Event{Proc: je.Proc, Obj: je.Obj}
		switch je.Kind {
		case "inv":
			e.Kind = KindInvoke
			op, err := spec.ParseOp(je.Op)
			if err != nil {
				return fmt.Errorf("decode history event %d: %w", i, err)
			}
			e.Op = op
		case "res":
			e.Kind = KindRespond
			e.Resp = je.Resp
		default:
			return fmt.Errorf("decode history event %d: unknown kind %q", i, je.Kind)
		}
		if err := fresh.Append(e); err != nil {
			return fmt.Errorf("decode history event %d: %w", i, err)
		}
	}
	*h = *fresh
	return nil
}

// WriteText writes the compact text format, one event per line:
//
//	inv p0 X fetchinc
//	res p0 X 3
//
// Blank lines and lines starting with '#' are comments on input.
func (h *History) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range h.events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return fmt.Errorf("write history: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write history: %w", err)
	}
	return nil
}

// ReadText parses the compact text format produced by WriteText.
func ReadText(r io.Reader) (*History, error) {
	h := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := h.Append(e); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read history: %w", err)
	}
	return h, nil
}

func parseEventLine(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Event{}, fmt.Errorf("expected 4 fields %q", line)
	}
	var e Event
	switch fields[0] {
	case "inv":
		e.Kind = KindInvoke
	case "res":
		e.Kind = KindRespond
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", fields[0])
	}
	if !strings.HasPrefix(fields[1], "p") {
		return Event{}, fmt.Errorf("process field %q must start with 'p'", fields[1])
	}
	proc, err := strconv.Atoi(fields[1][1:])
	if err != nil || proc < 0 {
		return Event{}, fmt.Errorf("invalid process %q", fields[1])
	}
	e.Proc = proc
	e.Obj = fields[2]
	if e.Kind == KindInvoke {
		op, err := spec.ParseOp(fields[3])
		if err != nil {
			return Event{}, err
		}
		e.Op = op
	} else {
		resp, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("invalid response %q", fields[3])
		}
		e.Resp = resp
	}
	return e, nil
}
