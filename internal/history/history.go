// Package history implements the histories of Section 3 of the paper: finite
// sequences of invocation and response events ⟨p, o, x⟩, with projections
// H|p and H|o, well-formedness, operations, and real-time precedence.
//
// Events are indexed from 0. Where the paper speaks of "the first t events"
// of a history H, this package means the events with indices 0..t-1, and the
// suffix H' of Definition 2 consists of the events with indices >= t.
package history

import (
	"fmt"
	"strings"

	"github.com/elin-go/elin/internal/spec"
)

// Kind distinguishes invocation events from response events.
type Kind int

// Event kinds. Enums start at 1 so the zero Event is detectably invalid.
const (
	KindInvoke Kind = iota + 1
	KindRespond
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInvoke:
		return "inv"
	case KindRespond:
		return "res"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a single event ⟨p, o, x⟩ where x is an invocation or a response.
type Event struct {
	// Kind says whether this is an invocation or a response.
	Kind Kind
	// Proc is the process id (0-based).
	Proc int
	// Obj names the object the event is on.
	Obj string
	// Op is the invoked operation; meaningful only when Kind == KindInvoke.
	Op spec.Op
	// Resp is the response value; meaningful only when Kind == KindRespond.
	Resp int64
}

// String renders the event in the compact text format used by the
// serializers: "inv p0 X fetchinc" or "res p0 X 3".
func (e Event) String() string {
	if e.Kind == KindInvoke {
		return fmt.Sprintf("inv p%d %s %s", e.Proc, e.Obj, e.Op)
	}
	return fmt.Sprintf("res p%d %s %d", e.Proc, e.Obj, e.Resp)
}

// Operation is an invocation event together with its matching response event
// (if any): what the paper calls an operation.
type Operation struct {
	// Proc is the invoking process.
	Proc int
	// Obj is the object operated on.
	Obj string
	// Op is the invocation.
	Op spec.Op
	// Inv is the index of the invocation event in the history.
	Inv int
	// Res is the index of the matching response event, or -1 if the
	// operation is pending (has no response in the history).
	Res int
	// Resp is the response value; meaningful only when Res >= 0.
	Resp int64
}

// Pending reports whether the operation has no response in the history.
func (o Operation) Pending() bool { return o.Res < 0 }

// String implements fmt.Stringer.
func (o Operation) String() string {
	if o.Pending() {
		return fmt.Sprintf("p%d %s.%s -> ? [%d,∞)", o.Proc, o.Obj, o.Op, o.Inv)
	}
	return fmt.Sprintf("p%d %s.%s -> %d [%d,%d]", o.Proc, o.Obj, o.Op, o.Resp, o.Inv, o.Res)
}

// History is a well-formed finite history: for every process p, the
// projection H|p is sequential (invocations and matching responses strictly
// alternate). The zero History is empty and ready to use.
type History struct {
	events []Event
	// open[p] is the index of process p's pending invocation, or -1.
	open map[int]int
	// invIdx[i] is, for a response event i, the index of its matching
	// invocation (-1 for invocation events). It makes Truncate restore the
	// pending-operation state in O(1) per removed event.
	invIdx []int
}

// New returns an empty history.
func New() *History {
	return &History{open: make(map[int]int)}
}

// FromEvents builds a history from an event sequence, validating
// well-formedness.
func FromEvents(events []Event) (*History, error) {
	h := New()
	for i, e := range events {
		if err := h.Append(e); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return h, nil
}

// Reserve pre-grows the internal buffers to hold at least n events without
// reallocating. The live runtime's merger calls it once with the run's
// event budget so that merging millions of recorded events never pays an
// append-time copy.
func (h *History) Reserve(n int) {
	if cap(h.events) >= n {
		return
	}
	events := make([]Event, len(h.events), n)
	copy(events, h.events)
	h.events = events
	invIdx := make([]int, len(h.invIdx), n)
	copy(invIdx, h.invIdx)
	h.invIdx = invIdx
}

// Len returns the number of events.
func (h *History) Len() int { return len(h.events) }

// Event returns the i-th event.
func (h *History) Event(i int) Event { return h.events[i] }

// Events returns a copy of the event sequence.
func (h *History) Events() []Event {
	cp := make([]Event, len(h.events))
	copy(cp, h.events)
	return cp
}

// Append adds an event, enforcing well-formedness: a process may not invoke
// while it has a pending operation, and a response must match the process's
// pending invocation (same object).
func (h *History) Append(e Event) error {
	if h.open == nil {
		h.open = make(map[int]int)
	}
	matched := -1
	switch e.Kind {
	case KindInvoke:
		if idx, ok := h.open[e.Proc]; ok && idx >= 0 {
			return fmt.Errorf("process p%d invokes %s on %s while operation at event %d is pending",
				e.Proc, e.Op, e.Obj, idx)
		}
		h.open[e.Proc] = len(h.events)
	case KindRespond:
		idx, ok := h.open[e.Proc]
		if !ok || idx < 0 {
			return fmt.Errorf("process p%d responds with no pending invocation", e.Proc)
		}
		if h.events[idx].Obj != e.Obj {
			return fmt.Errorf("process p%d responds on %s but pending invocation at event %d is on %s",
				e.Proc, e.Obj, idx, h.events[idx].Obj)
		}
		matched = idx
		h.open[e.Proc] = -1
	default:
		return fmt.Errorf("invalid event kind %d", int(e.Kind))
	}
	h.events = append(h.events, e)
	h.invIdx = append(h.invIdx, matched)
	return nil
}

// Invoke appends an invocation event.
func (h *History) Invoke(proc int, obj string, op spec.Op) error {
	return h.Append(Event{Kind: KindInvoke, Proc: proc, Obj: obj, Op: op})
}

// Respond appends the response to proc's pending invocation, inferring the
// object from the pending invocation.
func (h *History) Respond(proc int, resp int64) error {
	if h.open == nil {
		h.open = make(map[int]int)
	}
	idx, ok := h.open[proc]
	if !ok || idx < 0 {
		return fmt.Errorf("process p%d responds with no pending invocation", proc)
	}
	return h.Append(Event{Kind: KindRespond, Proc: proc, Obj: h.events[idx].Obj, Resp: resp})
}

// Call appends a complete operation: an invocation immediately followed by
// its response. It is the building block for sequential histories.
func (h *History) Call(proc int, obj string, op spec.Op, resp int64) error {
	if err := h.Invoke(proc, obj, op); err != nil {
		return err
	}
	return h.Respond(proc, resp)
}

// Operations returns the history's operations in invocation order.
func (h *History) Operations() []Operation {
	ops := make([]Operation, 0, len(h.events)/2+1)
	// pendingOp[p] is the index into ops of p's pending operation. A small
	// stack array covers the usual process counts without allocating.
	var small [16]int
	pendingOp := small[:]
	for i, e := range h.events {
		for e.Proc >= len(pendingOp) {
			pendingOp = append(pendingOp, 0)
		}
		switch e.Kind {
		case KindInvoke:
			pendingOp[e.Proc] = len(ops)
			ops = append(ops, Operation{
				Proc: e.Proc, Obj: e.Obj, Op: e.Op, Inv: i, Res: -1,
			})
		case KindRespond:
			j := pendingOp[e.Proc]
			ops[j].Res = i
			ops[j].Resp = e.Resp
		}
	}
	return ops
}

// ByObject returns the projection H|obj as a new history (event indices are
// renumbered within the projection).
func (h *History) ByObject(obj string) *History {
	p := New()
	for _, e := range h.events {
		if e.Obj == obj {
			// Projection of a well-formed history is well-formed.
			p.events = append(p.events, e)
			if e.Kind == KindInvoke {
				p.invIdx = append(p.invIdx, -1)
				p.open[e.Proc] = len(p.events) - 1
			} else {
				p.invIdx = append(p.invIdx, p.open[e.Proc])
				p.open[e.Proc] = -1
			}
		}
	}
	return p
}

// ByProc returns the projection H|proc as a new history.
func (h *History) ByProc(proc int) *History {
	p := New()
	for _, e := range h.events {
		if e.Proc == proc {
			p.events = append(p.events, e)
			if e.Kind == KindInvoke {
				p.invIdx = append(p.invIdx, -1)
				p.open[e.Proc] = len(p.events) - 1
			} else {
				p.invIdx = append(p.invIdx, p.open[e.Proc])
				p.open[e.Proc] = -1
			}
		}
	}
	return p
}

// ObjectEventIndex returns, for the projection H|obj, the index in H of each
// projected event. It lets callers translate a per-object event count t_o
// back to a global event count t (the construction in Lemma 7).
func (h *History) ObjectEventIndex(obj string) []int {
	var idx []int
	for i, e := range h.events {
		if e.Obj == obj {
			idx = append(idx, i)
		}
	}
	return idx
}

// Objects returns the distinct object names appearing in the history, in
// first-appearance order.
func (h *History) Objects() []string {
	seen := make(map[string]bool)
	var objs []string
	for _, e := range h.events {
		if !seen[e.Obj] {
			seen[e.Obj] = true
			objs = append(objs, e.Obj)
		}
	}
	return objs
}

// Procs returns the distinct process ids appearing in the history, in
// first-appearance order.
func (h *History) Procs() []int {
	seen := make(map[int]bool)
	var procs []int
	for _, e := range h.events {
		if !seen[e.Proc] {
			seen[e.Proc] = true
			procs = append(procs, e.Proc)
		}
	}
	return procs
}

// Prefix returns the history consisting of the first k events. Every prefix
// of a well-formed history is well-formed.
func (h *History) Prefix(k int) *History {
	if k > len(h.events) {
		k = len(h.events)
	}
	if k < 0 {
		k = 0
	}
	p := New()
	for i := 0; i < k; i++ {
		e := h.events[i]
		p.events = append(p.events, e)
		if e.Kind == KindInvoke {
			p.invIdx = append(p.invIdx, -1)
			p.open[e.Proc] = len(p.events) - 1
		} else {
			p.invIdx = append(p.invIdx, p.open[e.Proc])
			p.open[e.Proc] = -1
		}
	}
	return p
}

// Clone returns a deep copy.
func (h *History) Clone() *History {
	return h.Prefix(len(h.events))
}

// Truncate discards every event with index >= n, restoring the history to
// its state after exactly n Appends. It is the undo primitive of the
// in-place exploration engine (package explore): advancing a configuration
// appends events, undoing truncates them. The backing array is retained, so
// an append after a truncate reuses memory instead of allocating.
func (h *History) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	for len(h.events) > n {
		i := len(h.events) - 1
		e := h.events[i]
		h.events = h.events[:i]
		if e.Kind == KindRespond {
			// Removing a response reopens its invocation (recorded at
			// append time, so undo is O(1) per event).
			h.open[e.Proc] = h.invIdx[i]
		} else {
			// Removing an invocation leaves the process with no pending
			// operation (it had none before invoking).
			h.open[e.Proc] = -1
		}
		h.invIdx = h.invIdx[:i]
	}
}

// AppendFingerprint appends a canonical byte encoding of the event sequence
// to b and returns the extended slice. Two histories have equal encodings
// iff they have equal event sequences; the encoding is used by the
// configuration fingerprints of package sim and allocates only when b needs
// to grow.
func (h *History) AppendFingerprint(b []byte) []byte {
	for _, e := range h.events {
		b = append(b, byte(e.Kind))
		b = spec.AppendFPInt(b, int64(e.Proc))
		b = spec.AppendFPInt(b, int64(len(e.Obj)))
		b = append(b, e.Obj...)
		if e.Kind == KindInvoke {
			b = spec.AppendFPInt(b, int64(len(e.Op.Method)))
			b = append(b, e.Op.Method...)
			b = append(b, byte(e.Op.NArgs)) // NArgs <= 2 by construction
			for i := 0; i < e.Op.NArgs; i++ {
				b = spec.AppendFPInt(b, e.Op.Args[i])
			}
		} else {
			b = spec.AppendFPInt(b, e.Resp)
		}
	}
	return b
}

// Sequential reports whether the history is sequential: it consists of
// alternating invocation/matching-response pairs, starting with an
// invocation, with at most the final invocation unmatched (the paper's
// definition for finite histories).
func (h *History) Sequential() bool {
	for i := 0; i < len(h.events); i += 2 {
		if h.events[i].Kind != KindInvoke {
			return false
		}
		if i+1 < len(h.events) {
			r := h.events[i+1]
			if r.Kind != KindRespond || r.Proc != h.events[i].Proc || r.Obj != h.events[i].Obj {
				return false
			}
		}
	}
	return true
}

// String renders the history one event per line.
func (h *History) String() string {
	var b strings.Builder
	for i, e := range h.events {
		fmt.Fprintf(&b, "%3d  %s\n", i, e)
	}
	return b.String()
}
