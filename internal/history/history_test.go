package history

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/spec"
)

func mustInvoke(t *testing.T, h *History, p int, obj string, op spec.Op) {
	t.Helper()
	if err := h.Invoke(p, obj, op); err != nil {
		t.Fatal(err)
	}
}

func mustRespond(t *testing.T, h *History, p int, resp int64) {
	t.Helper()
	if err := h.Respond(p, resp); err != nil {
		t.Fatal(err)
	}
}

func TestWellFormedness(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("fetchinc"))
	// Second invocation by same process while pending must fail.
	if err := h.Invoke(0, "X", spec.MakeOp("fetchinc")); err == nil {
		t.Error("double invocation accepted")
	}
	// Response by a process with no pending invocation must fail.
	if err := h.Respond(1, 0); err == nil {
		t.Error("unmatched response accepted")
	}
	// Response on a mismatched object must fail.
	if err := h.Append(Event{Kind: KindRespond, Proc: 0, Obj: "Y", Resp: 0}); err == nil {
		t.Error("response on wrong object accepted")
	}
	mustRespond(t, h, 0, 0)
	if h.Len() != 2 {
		t.Fatalf("len = %d, want 2", h.Len())
	}
	// Invalid kind must fail.
	if err := h.Append(Event{Kind: 0, Proc: 0, Obj: "X"}); err == nil {
		t.Error("zero-kind event accepted")
	}
}

func TestOperations(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("fetchinc"))
	mustInvoke(t, h, 1, "X", spec.MakeOp("fetchinc"))
	mustRespond(t, h, 1, 0)
	mustRespond(t, h, 0, 1)
	mustInvoke(t, h, 1, "Y", spec.MakeOp1("write", 5))

	ops := h.Operations()
	if len(ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(ops))
	}
	if ops[0].Proc != 0 || ops[0].Inv != 0 || ops[0].Res != 3 || ops[0].Resp != 1 {
		t.Errorf("op0 = %+v", ops[0])
	}
	if ops[1].Proc != 1 || ops[1].Inv != 1 || ops[1].Res != 2 || ops[1].Resp != 0 {
		t.Errorf("op1 = %+v", ops[1])
	}
	if !ops[2].Pending() || ops[2].Obj != "Y" {
		t.Errorf("op2 = %+v", ops[2])
	}
	// String forms are exercised for coverage of diagnostics.
	if !strings.Contains(ops[2].String(), "?") {
		t.Errorf("pending op string = %q", ops[2].String())
	}
	if !strings.Contains(ops[0].String(), "-> 1") {
		t.Errorf("completed op string = %q", ops[0].String())
	}
}

func TestProjections(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("fetchinc"))
	mustRespond(t, h, 0, 0)
	mustInvoke(t, h, 0, "Y", spec.MakeOp("read"))
	mustInvoke(t, h, 1, "X", spec.MakeOp("fetchinc"))
	mustRespond(t, h, 1, 1)
	mustRespond(t, h, 0, 7)

	hx := h.ByObject("X")
	if hx.Len() != 4 {
		t.Fatalf("H|X len = %d, want 4", hx.Len())
	}
	for i := 0; i < hx.Len(); i++ {
		if hx.Event(i).Obj != "X" {
			t.Fatalf("H|X event %d on %s", i, hx.Event(i).Obj)
		}
	}
	hp := h.ByProc(0)
	if hp.Len() != 4 {
		t.Fatalf("H|p0 len = %d, want 4", hp.Len())
	}
	if !hp.Sequential() {
		t.Error("per-process projection must be sequential")
	}

	idx := h.ObjectEventIndex("X")
	want := []int{0, 1, 3, 4}
	if len(idx) != len(want) {
		t.Fatalf("ObjectEventIndex = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("ObjectEventIndex = %v, want %v", idx, want)
		}
	}

	objs := h.Objects()
	if len(objs) != 2 || objs[0] != "X" || objs[1] != "Y" {
		t.Errorf("Objects = %v", objs)
	}
	procs := h.Procs()
	if len(procs) != 2 || procs[0] != 0 || procs[1] != 1 {
		t.Errorf("Procs = %v", procs)
	}
}

func TestSequential(t *testing.T) {
	h := New()
	if !h.Sequential() {
		t.Error("empty history should be sequential")
	}
	if err := h.Call(0, "X", spec.MakeOp("read"), 5); err != nil {
		t.Fatal(err)
	}
	if err := h.Call(1, "X", spec.MakeOp1("write", 3), 0); err != nil {
		t.Fatal(err)
	}
	if !h.Sequential() {
		t.Error("call-built history should be sequential")
	}
	mustInvoke(t, h, 0, "X", spec.MakeOp("read"))
	if !h.Sequential() {
		t.Error("trailing pending invocation is allowed in a sequential history")
	}

	conc := New()
	mustInvoke(t, conc, 0, "X", spec.MakeOp("read"))
	mustInvoke(t, conc, 1, "X", spec.MakeOp("read"))
	if conc.Sequential() {
		t.Error("overlapping operations should not be sequential")
	}
}

func TestPrefixAndClone(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("fetchinc"))
	mustInvoke(t, h, 1, "X", spec.MakeOp("fetchinc"))
	mustRespond(t, h, 0, 0)
	mustRespond(t, h, 1, 1)

	p := h.Prefix(2)
	if p.Len() != 2 {
		t.Fatalf("prefix len = %d", p.Len())
	}
	// Prefix must be usable: pending invocations remain open.
	if err := p.Respond(0, 9); err != nil {
		t.Fatalf("prefix should accept response to pending op: %v", err)
	}
	// Out-of-range prefixes clamp.
	if h.Prefix(100).Len() != 4 || h.Prefix(-1).Len() != 0 {
		t.Error("prefix clamping failed")
	}

	c := h.Clone()
	if c.Len() != h.Len() {
		t.Fatal("clone length mismatch")
	}
	mustInvoke(t, c, 0, "X", spec.MakeOp("fetchinc"))
	if h.Len() == c.Len() {
		t.Error("clone shares state with original")
	}
}

func TestPrefixClosureProperty(t *testing.T) {
	// Lemma 6 groundwork: every prefix of a well-formed history is
	// well-formed (FromEvents accepts it).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHistory(r, 3, 10)
		for k := 0; k <= h.Len(); k++ {
			if _, err := FromEvents(h.Prefix(k).Events()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProjectionPartitionProperty(t *testing.T) {
	// The per-object projections partition the events of H.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHistory(r, 3, 12)
		total := 0
		for _, obj := range h.Objects() {
			total += h.ByObject(obj).Len()
		}
		return total == h.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomHistory builds a random well-formed history over nproc processes and
// objects {X, Y}.
func randomHistory(r *rand.Rand, nproc, maxOps int) *History {
	h := New()
	pending := make([]bool, nproc)
	objs := []string{"X", "Y"}
	nops := r.Intn(maxOps + 1)
	invoked := 0
	for steps := 0; steps < 4*maxOps; steps++ {
		p := r.Intn(nproc)
		if pending[p] {
			if err := h.Respond(p, int64(r.Intn(5))); err != nil {
				panic(err)
			}
			pending[p] = false
		} else if invoked < nops {
			obj := objs[r.Intn(len(objs))]
			if err := h.Invoke(p, obj, spec.MakeOp("fetchinc")); err != nil {
				panic(err)
			}
			pending[p] = true
			invoked++
		}
	}
	return h
}

func TestJSONRoundTrip(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("fetchinc"))
	mustInvoke(t, h, 1, "Y", spec.MakeOp2("cas", 0, 1))
	mustRespond(t, h, 0, 3)
	mustRespond(t, h, 1, 1)

	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), h.Len())
	}
	for i := 0; i < h.Len(); i++ {
		if back.Event(i) != h.Event(i) {
			t.Fatalf("event %d: %+v != %+v", i, back.Event(i), h.Event(i))
		}
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`[{"kind":"res","proc":0,"obj":"X","resp":1}]`,    // response first
		`[{"kind":"zap","proc":0,"obj":"X"}]`,             // unknown kind
		`[{"kind":"inv","proc":0,"obj":"X","op":"bad("}]`, // bad op
		`{"kind":"inv"}`, // not an array
	}
	for _, c := range cases {
		var h History
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("unmarshal accepted %s", c)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("fetchinc"))
	mustInvoke(t, h, 12, "reg1", spec.MakeOp1("write", -7))
	mustRespond(t, h, 0, 0)
	mustRespond(t, h, 12, 0)

	var buf bytes.Buffer
	if err := h.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), h.Len())
	}
	for i := 0; i < h.Len(); i++ {
		if back.Event(i) != h.Event(i) {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestReadTextCommentsAndErrors(t *testing.T) {
	good := "# a comment\n\ninv p0 X read\nres p0 X 5\n"
	h, err := ReadText(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d, want 2", h.Len())
	}

	bad := []string{
		"inv p0 X",            // too few fields
		"zap p0 X read",       // bad kind
		"inv q0 X read",       // bad proc prefix
		"inv p-1 X read",      // negative proc
		"inv p0 X bad(",       // bad op
		"res p0 X notanumber", // bad response
		"res p0 X 1",          // response with no pending op
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Errorf("ReadText accepted %q", line)
		}
	}
}

func TestHistoryString(t *testing.T) {
	h := New()
	mustInvoke(t, h, 0, "X", spec.MakeOp("read"))
	mustRespond(t, h, 0, 4)
	s := h.String()
	if !strings.Contains(s, "inv p0 X read") || !strings.Contains(s, "res p0 X 4") {
		t.Errorf("String() = %q", s)
	}
}

func TestKindString(t *testing.T) {
	if KindInvoke.String() != "inv" || KindRespond.String() != "res" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}
