package history

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestTruncateRestoresPendingState(t *testing.T) {
	h := New()
	read := spec.MakeOp(spec.MethodRead)
	if err := h.Invoke(0, "X", read); err != nil {
		t.Fatal(err)
	}
	if err := h.Invoke(1, "X", read); err != nil {
		t.Fatal(err)
	}
	if err := h.Respond(0, 7); err != nil {
		t.Fatal(err)
	}
	// Truncating the response reopens p0's invocation: responding again must
	// succeed, re-invoking must fail.
	h.Truncate(2)
	if err := h.Invoke(0, "X", read); err == nil {
		t.Fatal("p0 re-invoked with a pending operation after truncate")
	}
	if err := h.Respond(0, 9); err != nil {
		t.Fatalf("p0 could not respond after truncate: %v", err)
	}
	if h.Event(2).Resp != 9 {
		t.Fatalf("event 2 = %v", h.Event(2))
	}
	// Truncating an invocation frees the process to invoke again.
	h.Truncate(1)
	if err := h.Invoke(1, "X", read); err != nil {
		t.Fatalf("p1 could not re-invoke after truncate: %v", err)
	}
}

func TestTruncateClamps(t *testing.T) {
	h := New()
	if err := h.Call(0, "X", spec.MakeOp(spec.MethodFetchInc), 0); err != nil {
		t.Fatal(err)
	}
	h.Truncate(99)
	if h.Len() != 2 {
		t.Fatalf("truncate beyond length changed the history: %d", h.Len())
	}
	h.Truncate(-3)
	if h.Len() != 0 {
		t.Fatalf("negative truncate: %d", h.Len())
	}
	if err := h.Invoke(0, "X", spec.MakeOp(spec.MethodRead)); err != nil {
		t.Fatalf("append after full truncate: %v", err)
	}
}

// TestTruncateMatchesPrefixRandomly drives a random append/truncate walk
// and checks the truncated history behaves exactly like a fresh Prefix.
func TestTruncateMatchesPrefixRandomly(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		h := New()
		var trace []Event
		for i := 0; i < 25; i++ {
			if r.Intn(4) == 0 && h.Len() > 0 {
				n := r.Intn(h.Len())
				h.Truncate(n)
				trace = trace[:n]
				continue
			}
			p := r.Intn(3)
			if r.Intn(2) == 0 {
				if err := h.Invoke(p, "X", spec.MakeOp(spec.MethodFetchInc)); err == nil {
					trace = append(trace, h.Event(h.Len()-1))
				}
			} else {
				if err := h.Respond(p, int64(i)); err == nil {
					trace = append(trace, h.Event(h.Len()-1))
				}
			}
		}
		want, err := FromEvents(trace)
		if err != nil {
			t.Fatalf("trial %d: trace not well-formed: %v", trial, err)
		}
		if h.String() != want.String() {
			t.Fatalf("trial %d: truncated history diverges from rebuilt history:\n%s\nvs\n%s",
				trial, h.String(), want.String())
		}
		// The fingerprints must agree too.
		if !bytes.Equal(h.AppendFingerprint(nil), want.AppendFingerprint(nil)) {
			t.Fatalf("trial %d: fingerprints diverge", trial)
		}
	}
}

func TestAppendFingerprintInjective(t *testing.T) {
	a := New()
	if err := a.Call(0, "X", spec.MakeOp1(spec.MethodWrite, 3), 0); err != nil {
		t.Fatal(err)
	}
	b := New()
	if err := b.Call(0, "X", spec.MakeOp1(spec.MethodWrite, 4), 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.AppendFingerprint(nil), b.AppendFingerprint(nil)) {
		t.Fatal("different histories share a fingerprint encoding")
	}
	c := a.Clone()
	if !bytes.Equal(a.AppendFingerprint(nil), c.AppendFingerprint(nil)) {
		t.Fatal("clone fingerprint diverges")
	}
}
