package elin_test

import (
	"fmt"

	elin "github.com/elin-go/elin"
	"github.com/elin-go/elin/internal/core/counter"
)

// Checking a hand-built history for linearizability and weak consistency.
func Example_checkHistory() {
	h := elin.NewHistory()
	_ = h.Invoke(0, "X", elin.MakeOp("fetchinc"))
	_ = h.Invoke(1, "X", elin.MakeOp("fetchinc"))
	_ = h.Respond(0, 0)
	_ = h.Respond(1, 0) // duplicate: not linearizable, but weakly consistent

	objs := map[string]elin.Object{"X": elin.NewObject(elin.FetchInc{})}
	lin, _ := elin.Linearizable(objs, h, elin.Options{})
	weak, _ := elin.WeaklyConsistent(objs, h, elin.Options{})
	fmt.Println("linearizable:", lin)
	fmt.Println("weakly consistent:", weak)
	// Output:
	// linearizable: false
	// weakly consistent: true
}

// MinT: the least cut t after which a history has a legal sequential
// explanation (Definition 2).
func Example_minT() {
	h := elin.NewHistory()
	_ = h.Call(0, "X", elin.MakeOp("fetchinc"), 0)
	_ = h.Call(1, "X", elin.MakeOp("fetchinc"), 0) // stale duplicate
	_ = h.Call(0, "X", elin.MakeOp("fetchinc"), 2)

	t, ok, _ := elin.MinT(elin.NewObject(elin.FetchInc{}), h, elin.Options{})
	fmt.Println(ok, t)
	// Output:
	// true 2
}

// Running an implementation and checking the recorded history.
func Example_runAndCheck() {
	res, _ := elin.Run(elin.RunConfig{
		Impl:     counter.CAS{},
		Workload: elin.UniformWorkload(2, 2, elin.MakeOp("fetchinc")),
		Seed:     1,
	})
	objs := map[string]elin.Object{"cas-counter": counter.CAS{}.Spec()}
	lin, _ := elin.Linearizable(objs, res.History, elin.Options{})
	fmt.Println("ops:", len(res.History.Operations()), "linearizable:", lin)
	// Output:
	// ops: 4 linearizable: true
}

// Exhaustive bounded exploration: every interleaving of a two-process run.
func Example_exploreEverywhere() {
	root, _ := elin.NewSystem(counter.CAS{},
		elin.UniformWorkload(2, 1, elin.MakeOp("fetchinc")), nil, elin.Options{}, false)
	ok, _, st, _ := elin.LinearizableEverywhere(root, 12, elin.ExploreConfig{}, elin.Options{})
	fmt.Println("all interleavings linearizable:", ok, "leaves:", st.Leaves)
	// Output:
	// all interleavings linearizable: true leaves: 28
}
