package elin

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/core/counter"
)

// TestFacadeEndToEnd drives the whole stack through the façade only: build
// a history, check it; run an implementation, check the recording.
func TestFacadeEndToEnd(t *testing.T) {
	// 1. Hand-built history checking.
	h := NewHistory()
	if err := h.Invoke(0, "X", MakeOp1("write", 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.Invoke(1, "X", MakeOp("read")); err != nil {
		t.Fatal(err)
	}
	if err := h.Respond(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Respond(0, 0); err != nil {
		t.Fatal(err)
	}
	objs := map[string]Object{"X": NewObject(Register{})}
	ok, err := Linearizable(objs, h, Options{})
	if err != nil || !ok {
		t.Fatalf("Linearizable = %v, %v", ok, err)
	}

	// 2. Simulation + MinT monitoring.
	res, err := Run(RunConfig{
		Impl:     counter.CAS{},
		Workload: UniformWorkload(2, 3, MakeOp("fetchinc")),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := TrackMinT(NewObject(FetchInc{}), res.History, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.FinalMinT != 0 {
		t.Fatalf("CAS counter MinT = %d", v.FinalMinT)
	}

	// 3. Exhaustive exploration through the façade.
	root, err := NewSystem(counter.CAS{}, UniformWorkload(2, 1, MakeOp("fetchinc")), nil, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	allLin, _, st, err := LinearizableEverywhere(root, 12, ExploreConfig{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !allLin || st.Leaves == 0 {
		t.Fatalf("exploration: lin=%v leaves=%d", allLin, st.Leaves)
	}
}

func TestFacadeSerialization(t *testing.T) {
	text := "inv p0 X fetchinc\nres p0 X 0\n"
	h, err := ReadHistoryText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	op, err := ParseOp("cas(1,2)")
	if err != nil || op != MakeOp2("cas", 1, 2) {
		t.Fatalf("ParseOp = %v, %v", op, err)
	}
}

func TestFacadeTrendConstants(t *testing.T) {
	if TrendStabilized.String() != "stabilized" ||
		TrendDiverging.String() != "diverging" ||
		TrendInconclusive.String() != "inconclusive" {
		t.Error("trend constants mismatched")
	}
}

func TestFacadeWeakResponses(t *testing.T) {
	h := NewHistory()
	if err := h.Call(0, "X", MakeOp("fetchinc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Invoke(1, "X", MakeOp("fetchinc")); err != nil {
		t.Fatal(err)
	}
	resps, err := WeakResponses(NewObject(FetchInc{}), h, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 { // 0 (ignoring p0) or 1 (counting p0)
		t.Fatalf("WeakResponses = %v", resps)
	}
}

func TestFacadeLiveRuntime(t *testing.T) {
	// The live layer end to end through the facade: a clean run, and a
	// caught-shrunk-confirmed junk run.
	res, err := LiveRun(LiveConfig{
		Object:  NewAtomicFetchInc("C", 0),
		Clients: 2,
		Ops:     400,
		Seed:    1,
		Monitor: MonitorConfig{Stride: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil || res.Verdict.Trend != TrendStabilized {
		t.Fatalf("clean live run: violation=%v trend=%s", res.Violation, res.Verdict.Trend)
	}
	same, err := LiveVerify(NewAtomicFetchInc("C", 0), res.History)
	if err != nil || !same {
		t.Fatalf("replay identity: same=%v err=%v", same, err)
	}

	junk, err := LiveFuzz(FuzzConfig{
		Base: LiveConfig{
			Object:  NewJunkFetchInc("C", 25),
			Clients: 2,
			Ops:     200,
			Seed:    5,
			Monitor: MonitorConfig{Stride: 64},
		},
		Runs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !junk.Found() || !junk.Witness.Replay.Diverged {
		t.Fatalf("junk not caught+confirmed: %+v", junk)
	}
}

// TestFacadeScenario drives the declarative entry point through the
// façade: one Scenario value on every engine, one Report schema.
func TestFacadeScenario(t *testing.T) {
	s := Scenario{
		Impl:     "cas-counter",
		Workload: "uniform:inc",
		Procs:    2,
		Ops:      2,
		Seed:     1,
		Budget:   ScenarioBudget{Depth: 22},
	}
	for _, e := range Engines() {
		rep, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if rep.Verdict != VerdictOK {
			t.Errorf("%s verdict = %s (%s)", e.Name(), rep.Verdict, rep.Detail)
		}
	}
	rep, err := RunScenario("explore", Scenario{
		Impl:     "reg-consensus",
		Procs:    2,
		Ops:      1,
		Analysis: AnalysisValency,
		Budget:   ScenarioBudget{Depth: 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valency == nil || rep.Verdict != VerdictViolation {
		t.Fatalf("valency scenario: verdict=%s valency=%+v", rep.Verdict, rep.Valency)
	}
	if _, err := EngineByName("nosuch"); err == nil {
		t.Error("unknown engine accepted")
	}
}
