package elin

// One benchmark per deterministic experiment table of EXPERIMENTS.md (E17
// runs real goroutine concurrency, so its timings live in the elin stress
// trajectory instead), plus the
// design-choice ablations and micro-benchmarks of the decision procedures.
// The experiment benchmarks time a full table regeneration; run
// `go run ./cmd/elin bench` to see the tables themselves.

import (
	"math/rand"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/exp"
	"github.com/elin-go/elin/internal/gen"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1MinTMonotone(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Locality(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3InfiniteObjects(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4NotSafety(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5Announce(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6LocalCopy(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7Trivial(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8Valency(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9ELConsensus(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10TestSet(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Stabilize(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Divergence(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Throughput(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14Checker(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15Progress(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16Hierarchy(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE18Recovery(b *testing.B)       { benchExperiment(b, "E18") }
func BenchmarkE20MonitorGap(b *testing.B)     { benchExperiment(b, "E20") }

// ----------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md).

// Ablation 1: failure memoization in the generic engine. The engine
// explores orderings of overlapping operations; without the (mask, state)
// failure table the search revisits exponentially many equivalent suffixes.
func BenchmarkAblationMemoOn(b *testing.B) {
	objs, h := ablationHistory()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := check.Linearizable(objs, h, check.Options{NoFastPath: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMemoOff(b *testing.B) {
	objs, h := ablationHistory()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := check.Options{NoFastPath: true, NoMemo: true, Budget: 1 << 28}
		if _, err := check.Linearizable(objs, h, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func ablationHistory() (map[string]spec.Object, *history.History) {
	// A highly concurrent, UNSATISFIABLE register history: 8 overlapping
	// writes of distinct values plus a read of a never-written value.
	// Deciding it requires exhausting the orderings of the writes — 8!
	// paths without memoization, ~2^8 distinct (mask, state) pairs with it.
	// (Fetch&inc would not do here: its per-state response uniqueness
	// collapses the search regardless.)
	h := history.New()
	const n = 8
	for p := 0; p < n; p++ {
		if err := h.Invoke(p, "X", spec.MakeOp1(spec.MethodWrite, int64(p+1))); err != nil {
			panic(err)
		}
	}
	if err := h.Invoke(n, "X", spec.MakeOp(spec.MethodRead)); err != nil {
		panic(err)
	}
	if err := h.Respond(n, 99); err != nil {
		panic(err)
	}
	for p := 0; p < n; p++ {
		if err := h.Respond(p, 0); err != nil {
			panic(err)
		}
	}
	return map[string]spec.Object{"X": spec.NewObject(spec.Register{})}, h
}

// Ablation 2: MinT by binary search (Lemma 5) vs linear scan.
func BenchmarkAblationMinTBinary(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := sloppyHistory(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := check.MinT(obj, h, check.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMinTLinear(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := sloppyHistory(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		found := false
		for t := 0; t <= h.Len() && !found; t++ {
			ok, err := check.TLinearizable(obj, h, t, check.Options{})
			if err != nil {
				b.Fatal(err)
			}
			found = ok
		}
		if !found {
			b.Fatal("no t found")
		}
	}
}

func sloppyHistory(nops int) *history.History {
	h := history.New()
	for i := 0; i < nops; i++ {
		if err := h.Call(i%2, "X", spec.MakeOp(spec.MethodFetchInc), int64(i/2)); err != nil {
			panic(err)
		}
	}
	return h
}

// Ablation 3: the Lemma 17 fast path vs the generic engine at the largest
// size the generic engine can handle.
func BenchmarkAblationFastPathOn(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := atomicCounterHistory(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := check.TLinearizable(obj, h, 8, check.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFastPathOff(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := atomicCounterHistory(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := check.TLinearizable(obj, h, 8, check.Options{NoFastPath: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------------------------
// Micro-benchmarks: decision procedures.

func atomicCounterHistory(nops int) *history.History {
	h := history.New()
	for i := 0; i < nops; i++ {
		if err := h.Call(i%2, "X", spec.MakeOp(spec.MethodFetchInc), int64(i)); err != nil {
			panic(err)
		}
	}
	return h
}

func BenchmarkFetchIncFastPath64(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := atomicCounterHistory(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := check.TLinearizable(obj, h, 0, check.Options{})
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkFetchIncGeneric16(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := atomicCounterHistory(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := check.TLinearizable(obj, h, 0, check.Options{NoFastPath: true})
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkMinTBinarySearch256(b *testing.B) {
	obj := spec.NewObject(spec.FetchInc{})
	h := atomicCounterHistory(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := check.MinT(obj, h, check.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegisterLinearizable(b *testing.B) {
	objs := map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	r := rand.New(rand.NewSource(9))
	h := gen.Register(r, gen.HistoryConfig{Procs: 3, Ops: 10, PendingBias: 0.3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := check.Linearizable(objs, h, check.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeakConsistencyRegister(b *testing.B) {
	objs := map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	r := rand.New(rand.NewSource(10))
	h := gen.Register(r, gen.HistoryConfig{Procs: 3, Ops: 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := check.WeaklyConsistent(objs, h, check.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeakResponsesELRegister(b *testing.B) {
	// The inner loop of every eventually linearizable base-object action.
	obj := spec.NewObject(spec.Register{})
	h := history.New()
	for i := 0; i < 8; i++ {
		if err := h.Call(i%3, "R", spec.MakeOp1(spec.MethodWrite, int64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := h.Invoke(0, "R", spec.MakeOp(spec.MethodRead)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := check.WeakResponses(obj, h, 0, check.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------------------------
// Micro-benchmarks: the execution runtime.

func BenchmarkSimCASCounter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Impl:      counter.CAS{},
			Workload:  sim.UniformWorkload(4, 8, spec.MakeOp(spec.MethodFetchInc)),
			Scheduler: sim.Random{},
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemClone(b *testing.B) {
	sys, err := sim.NewSystem(counter.CAS{},
		sim.UniformWorkload(4, 4, spec.MakeOp(spec.MethodFetchInc)), nil, check.Options{}, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sys.Advance(i%4, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}
