module github.com/elin-go/elin

go 1.24
