// Package elin is a verification and simulation toolkit for eventual
// linearizability in asynchronous shared memory, reproducing Guerraoui &
// Ruppert, "A Paradox of Eventual Linearizability in Shared Memory"
// (PODC 2014).
//
// The library provides:
//
//   - sequential specifications of shared-object types (registers,
//     fetch&increment, consensus, test&set, compare&swap, queues, ...);
//   - histories with invocation/response events, projections and
//     serialization;
//   - decision procedures for linearizability, t-linearizability
//     (Definition 2), weak consistency (Definition 1), and a MinT monitor
//     that classifies eventual-linearizability behaviour on growing
//     prefixes (Definitions 3/4);
//   - an implementation model (deterministic step machines over shared
//     base objects), linearizable and eventually linearizable base-object
//     substrates, randomized/adversarial schedulers, and a bounded
//     exhaustive model checker with valency analysis (Proposition 15) and
//     stable-configuration search (Proposition 18);
//   - the paper's algorithms and constructions: the Figure 1
//     announce/verify wrapper (Proposition 11), consensus from eventually
//     linearizable registers (Proposition 16), the communication-free
//     test&set, the local-copy construction (Theorem 12), the
//     stable-configuration transformation (Proposition 18), and the
//     triviality decision procedure (Proposition 14).
//
// This package is the façade: it re-exports the surface most users need.
// The full API lives in the internal packages and is exercised by the
// example programs under examples/ and the experiment suite in
// cmd/elin (elin bench).
package elin

import (
	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/campaign"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/compare"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/loadgen"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/scenario"
	"github.com/elin-go/elin/internal/server"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
	"github.com/elin-go/elin/internal/wal"
)

// Scenario layer — the declarative entry point. One Scenario value runs
// unchanged on every engine (Explore, Sim, Live, Serve) and every engine
// answers with the same unified Report; the elin CLI is a thin shell over
// exactly this surface.
type (
	// Scenario is one declarative description of an execution to check:
	// object/implementation by registry name or value, workload, scheduler,
	// checker options, tolerance, budget, workers, seed.
	Scenario = scenario.Scenario
	// ScenarioBudget bounds a scenario's execution per engine regime.
	ScenarioBudget = scenario.Budget
	// Engine executes scenarios in one regime ("explore", "sim", "live",
	// "serve").
	Engine = scenario.Engine
	// Report is the unified outcome every engine returns; its JSON
	// encoding is stable (schema elin/report/v1) and golden-tested.
	Report = scenario.Report
)

// Scenario verdicts and Explore-engine analyses.
const (
	VerdictOK        = scenario.VerdictOK
	VerdictViolation = scenario.VerdictViolation
	AnalysisLin      = scenario.AnalysisLin
	AnalysisWeak     = scenario.AnalysisWeak
	AnalysisValency  = scenario.AnalysisValency
	AnalysisStable   = scenario.AnalysisStable
)

var (
	// RunScenario resolves the named engine ("" = sim) and executes the
	// scenario on it.
	RunScenario = scenario.Run
	// Engines returns every scenario engine.
	Engines = scenario.Engines
	// EngineByName resolves a scenario engine by registry name.
	EngineByName = scenario.EngineByName
)

// Campaign layer — declarative sweep grids over scenarios. One Sweep
// names axes (engine, impl, workload, policy, procs, ops, tolerance,
// seed) with exclusion predicates; RunSweep expands the grid and executes
// every cell on one shared bounded pool into a Campaign report (schema
// elin/campaign/v1) whose canonical form is byte-stable; CompareCampaigns
// classifies a campaign against a baseline (same/flip/new/missing plus
// perf-regressed) and its Gate is the CI regression check `elin sweep
// -baseline` exits non-zero on.
type (
	// Sweep is one declarative scenario-grid specification (schema
	// elin/sweep/v1).
	Sweep = campaign.Spec
	// SweepAxes are the sweep dimensions.
	SweepAxes = campaign.Axes
	// SweepMatch is an exclusion predicate over grid coordinates.
	SweepMatch = campaign.Match
	// Campaign is the aggregated outcome of one sweep: per-cell verdicts
	// and Reports, rollups by axis, timing percentiles.
	Campaign = campaign.Campaign
	// CampaignCell is one executed grid point.
	CampaignCell = campaign.Cell
	// CampaignDiff classifies a campaign against a baseline.
	CampaignDiff = campaign.Diff
	// Timing is the shared machine-readable timing record (BENCH_*.json
	// trajectories and campaign cells alike).
	Timing = scenario.Timing
)

var (
	// RunSweep expands and executes a sweep on a shared worker pool.
	RunSweep = campaign.Run
	// LoadSweep reads and validates a sweep spec file.
	LoadSweep = campaign.LoadSpec
	// LoadCampaign reads a campaign report file (e.g. a committed
	// baseline).
	LoadCampaign = campaign.Load
	// CompareCampaigns diffs a campaign against a baseline campaign.
	CompareCampaigns = campaign.Compare
)

// Comparison layer — head-to-head of two implementation families over
// matched grid cells (schema elin/compare/v1). Cells pair by their
// family-blind identity (the cell ID with impl=* wildcarded) and the
// winner ladder is deterministic-only: verdict, then trend class, then
// final MinT, then stabilization point — throughput is reported but
// never decides. The canonical form zeroes throughput and is
// byte-stable, the committed-report contract `elin compare -canonical`
// emits.
type (
	// Comparison is one head-to-head report over matched grid cells.
	Comparison = compare.Report
	// ComparisonCell is one matched pair of cells with its winner.
	ComparisonCell = compare.Cell
)

var (
	// CompareFamilies pairs the cells of two separately swept campaigns.
	CompareFamilies = compare.Campaigns
	// SplitFamilies splits one mixed-grid campaign into two sides by
	// implementation lists and pairs the matched cells.
	SplitFamilies = compare.Split
)

// Specification layer.
type (
	// Op is an operation invocation (method name plus arguments).
	Op = spec.Op
	// State is an immutable, comparable object state.
	State = spec.State
	// Outcome is one (response, next state) pair of a transition relation.
	Outcome = spec.Outcome
	// Type is a sequential object type (Q, Q0, INV, RES, delta).
	Type = spec.Type
	// Object pairs a type with an initial state.
	Object = spec.Object

	// Register is a read/write register type.
	Register = spec.Register
	// FetchInc is the fetch&increment counter type.
	FetchInc = spec.FetchInc
	// Consensus is the one-shot consensus type.
	Consensus = spec.Consensus
	// TestSet is the test&set type.
	TestSet = spec.TestSet
	// CAS is the compare&swap type.
	CAS = spec.CAS
	// Queue is the FIFO queue type.
	Queue = spec.Queue
	// MaxRegister is the max-register type.
	MaxRegister = spec.MaxRegister
)

// History layer.
type (
	// History is a well-formed finite history of invocation and response
	// events.
	History = history.History
	// Event is a single event <p, o, x>.
	Event = history.Event
	// Operation is an invocation with its matching response, if any.
	Operation = history.Operation
)

// Checking layer.
type (
	// Options tunes the decision procedures.
	Options = check.Options
	// Verdict is a TrackMinT result.
	Verdict = check.Verdict
	// Sample is one (prefix length, MinT) measurement.
	Sample = check.Sample
	// Trend classifies MinT growth.
	Trend = check.Trend
	// Monitor is the online windowed t-linearizability monitor interface: a
	// growing history is fed event by event and checked window by window.
	// Implementations: IncrementalMonitor (sequential, the default),
	// check.ShardedByWindow (pipelined on a worker pool), check.ShardedByKey
	// (one monitor per object key), check.Null (record-only).
	Monitor = check.Monitor
	// IncrementalMonitor is the sequential exhaustive monitor — the
	// reference implementation every sharded monitor is pinned against.
	IncrementalMonitor = check.Incremental
	// MonitorConfig tunes the online monitor (stride, tolerance).
	MonitorConfig = check.IncrementalConfig
	// MonitorSpec is a parsed monitor selection (full | sample:N | shard:K
	// | shard:key | none).
	MonitorSpec = check.MonitorSpec
	// WindowViolation is an online monitor stop: the offending window as a
	// standalone, rebased history.
	WindowViolation = check.WindowViolation
)

// Trend values re-exported for callers of TrackMinT.
const (
	TrendStabilized   = check.TrendStabilized
	TrendDiverging    = check.TrendDiverging
	TrendInconclusive = check.TrendInconclusive
)

// Monitor spec kinds re-exported for callers of NewMonitor.
const (
	MonitorFull        = check.MonitorFull
	MonitorSample      = check.MonitorSample
	MonitorShardWindow = check.MonitorShardWindow
	MonitorShardKey    = check.MonitorShardKey
	MonitorNone        = check.MonitorNone
)

// Execution layer.
type (
	// Impl is an implementation of a shared object from base objects.
	Impl = machine.Impl
	// Process is one process's deterministic step machine.
	Process = machine.Process
	// Action is a process's next step (base invocation or return).
	Action = machine.Action
	// Base describes one shared base object of an implementation.
	Base = machine.Base
	// System is a live configuration of an execution.
	System = sim.System
	// RunConfig describes one simulation run.
	RunConfig = sim.Config
	// RunResult is a simulation run's outcome.
	RunResult = sim.Result
	// Scheduler picks which process steps next.
	Scheduler = sim.Scheduler
	// Policy decides when an eventually linearizable base stabilizes.
	Policy = base.Policy
	// ExploreConfig tunes exhaustive exploration (configuration
	// deduplication, worker parallelism, frontier split depth).
	ExploreConfig = explore.Config
	// ExploreStats aggregates exploration counters.
	ExploreStats = explore.Stats
)

// Operation constructors.
var (
	// MakeOp returns an operation with no arguments.
	MakeOp = spec.MakeOp
	// MakeOp1 returns an operation with one argument.
	MakeOp1 = spec.MakeOp1
	// MakeOp2 returns an operation with two arguments.
	MakeOp2 = spec.MakeOp2
	// ParseOp parses an operation from its string form.
	ParseOp = spec.ParseOp
	// NewObject pairs a type with its canonical initial state.
	NewObject = spec.NewObject
)

// History constructors and serialization.
var (
	// NewHistory returns an empty history.
	NewHistory = history.New
	// HistoryFromEvents validates and builds a history.
	HistoryFromEvents = history.FromEvents
	// ReadHistoryText parses the compact text serialization.
	ReadHistoryText = history.ReadText
)

// Decision procedures.
var (
	// Legal reports legality of a sequential history.
	Legal = check.Legal
	// Linearizable checks linearizability per object (locality).
	Linearizable = check.Linearizable
	// TLinearizable checks Definition 2 on a single-object history.
	TLinearizable = check.TLinearizable
	// MinT computes the least t making a history t-linearizable.
	MinT = check.MinT
	// MinTLocal computes per-object t_o values (Lemma 7).
	MinTLocal = check.MinTLocal
	// WeaklyConsistent checks Definition 1 (locality per Lemma 8).
	WeaklyConsistent = check.WeaklyConsistent
	// WeakResponses enumerates the Definition 1 candidate responses for a
	// pending operation.
	WeakResponses = check.WeakResponses
	// TrackMinT measures MinT over growing prefixes and classifies the
	// trend — the finite-data instrument for Definitions 3/4.
	TrackMinT = check.TrackMinT
	// NewMonitor builds the monitor a parsed spec selects (sequential,
	// sampling, sharded, or record-only) for a single-object history.
	NewMonitor = check.NewMonitor
	// NewIncrementalMonitor returns the sequential online windowed monitor
	// directly.
	//
	// Deprecated: use NewMonitor with MonitorFull (or ParseMonitorSpec).
	NewIncrementalMonitor = check.NewIncremental
	// ParseMonitorSpec parses the monitor spec vocabulary ("full",
	// "sample:N", "shard:K", "shard:key", "none").
	ParseMonitorSpec = check.ParseMonitorSpec
	// ClassifyTrend labels the growth trend of a MinT sample series.
	ClassifyTrend = check.Classify
)

// Execution and exploration.
var (
	// Run executes an implementation under a scheduler and records its
	// history.
	Run = sim.Run
	// NewSystem builds a live configuration for step-by-step control.
	NewSystem = sim.NewSystem
	// UniformWorkload builds an n-process workload repeating one
	// operation.
	UniformWorkload = sim.UniformWorkload
	// ExploreDFS walks every interleaving to a depth bound using the
	// in-place advance/undo engine; ExploreConfig selects dedup and worker
	// parallelism (the zero value keeps the walk sequential, safe for
	// stateful visitors).
	ExploreDFS = explore.DFS
	// ExploreLeaves enumerates the leaf configurations of the bounded
	// execution tree (worker parallelism fans subtrees out across cores).
	ExploreLeaves = explore.Leaves
	// LinearizableEverywhere checks all bounded interleavings; the
	// violation witness is deterministic for every worker count.
	LinearizableEverywhere = explore.LinearizableEverywhere
	// WeaklyConsistentEverywhere checks weak consistency of all bounded
	// interleavings; the violation witness is deterministic for every
	// worker count.
	WeaklyConsistentEverywhere = explore.WeaklyConsistentEverywhere
	// AnalyzeValency performs the Proposition 15 valency analysis
	// (configuration deduplication merges symmetric interleavings; worker
	// parallelism classifies subtrees concurrently).
	AnalyzeValency = explore.Analyze
	// FindStable searches for a Proposition 18 stable configuration
	// (worker parallelism pipelines the per-candidate stability
	// verifications).
	FindStable = explore.FindStable
)

// Live concurrent runtime: real goroutine clients against genuinely shared
// objects, with online monitoring and shrink-to-simulator replay.
type (
	// LiveObject is a concurrency-safe shared object driven by goroutine
	// clients.
	LiveObject = live.Object
	// LiveConfig describes one live stress run.
	LiveConfig = live.Config
	// LiveResult is a live run's outcome (merged history, throughput,
	// latency percentiles, monitor verdict).
	LiveResult = live.Result
	// LiveOpGen generates client operations from per-client RNG streams.
	LiveOpGen = live.OpGen
	// FuzzConfig drives a seeded fuzz campaign over live runs.
	FuzzConfig = live.FuzzConfig
	// FuzzResult is a fuzz campaign's outcome.
	FuzzResult = live.FuzzResult
	// ShrunkWitness is a ddmin-minimized, simulator-confirmed
	// counterexample.
	ShrunkWitness = live.Witness
	// ReplayConfig describes a commit-order replay of a recorded history
	// inside the deterministic simulator.
	ReplayConfig = sim.ReplayConfig
	// ReplayResult reports a commit-order replay (divergence pinpoints the
	// first out-of-model response).
	ReplayResult = sim.ReplayResult
)

var (
	// LiveRun executes one live stress run.
	LiveRun = live.Run
	// LiveReplay re-executes a merged history serially, re-deriving every
	// response from the recorded commit order.
	LiveReplay = live.Replay
	// LiveVerify checks that a recorded run replays byte-identically.
	LiveVerify = live.Verify
	// LiveFuzz runs a seeded fuzz campaign with shrink-to-sim on the first
	// violation.
	LiveFuzz = live.Fuzz
	// ShrinkViolation minimizes a monitor violation by delta debugging,
	// confirming every step in the deterministic simulator.
	ShrinkViolation = live.Shrink
	// NewAtomicFetchInc returns the lock-free live counter.
	NewAtomicFetchInc = live.NewAtomicFetchInc
	// NewSerialized wraps an atomic base object in a mutex for live runs.
	NewSerialized = live.NewSerialized
	// NewSerializedEventual wraps an eventually linearizable base object
	// for live runs.
	NewSerializedEventual = live.NewSerializedEventual
	// NewJunkFetchInc returns the injected-bug counter that loses
	// increments past its stick value (monitor/shrink pipeline demos).
	NewJunkFetchInc = live.NewJunkFetchInc
	// SimReplay re-executes a recorded history commit-order inside the
	// deterministic simulator.
	SimReplay = sim.Replay
)

// Fault plane and durable commit log: seeded deterministic fault injection
// into the live runtime (stalls, crash-at-commit, scheduling jitter, log
// corruption), a CRC-framed write-ahead commit log, and crash recovery
// that replays the log, verifies commit determinism, and stitches the
// recovered history into a continuation run.
type (
	// FaultSpec is a parsed fault-injection spec; all draws are pure
	// functions of (seed, ticket), so injections replay identically.
	FaultSpec = faults.Spec
	// FaultStall freezes one client for a window of commit tickets.
	FaultStall = faults.Stall
	// FaultCorrupt describes commit-log corruption (bit flip, truncation).
	FaultCorrupt = faults.Corrupt
	// CommitSink receives each merged history event with its commit ticket
	// as it is appended — the storage seam of the live runtime.
	CommitSink = live.CommitSink
	// WAL is the durable commit log (implements CommitSink).
	WAL = wal.Log
	// WALHeader is the self-describing run metadata a commit log opens
	// with; recovery rebuilds the run from it.
	WALHeader = wal.Header
	// WALRecovered is what Recover salvages from a commit log: header,
	// events, commit tickets, and whether the tail was torn.
	WALRecovered = wal.Recovered
	// WALSyncPolicy governs fsync frequency (always, never, every N).
	WALSyncPolicy = wal.SyncPolicy
	// ResumeResult is a run rebuilt from its commit log, ready to continue.
	ResumeResult = live.ResumeResult
)

var (
	// ParseFaults parses the fault grammar
	// ("stall:C@T+D,crash:K,jitter:N,flip").
	ParseFaults = faults.Parse
	// CreateWAL opens a new commit log with a header frame.
	CreateWAL = wal.Create
	// RecoverWAL reads a commit log back, truncating any torn tail at the
	// first bad frame.
	RecoverWAL = wal.Recover
	// ParseSyncPolicy parses "always", "never" or "interval:N".
	ParseSyncPolicy = wal.ParseSyncPolicy
	// LiveResume replays a recovered commit log against a fresh template,
	// verifying every recorded response, and returns the rebuilt state.
	LiveResume = live.Resume
	// RecoverScenario runs the full crash-recovery pipeline: recover the
	// log, resume the object, continue with fresh clients, and verify the
	// stitched history still t-stabilizes.
	RecoverScenario = scenario.Recover
)

// Networked runtime — the serve engine's building blocks: a framed-TCP
// object server with a seeded network fault plane and a monitor that
// degrades to sampling under overload, plus a retrying client fleet with
// jittered exponential backoff and idempotent resume (exactly-once across
// reconnects). RunScenario("serve", s) composes the two; these exports are
// for embedding either half directly.
type (
	// Server is the long-lived framed-TCP object server.
	Server = server.Server
	// ServerConfig describes one server instance (object, client id space,
	// monitor, network faults, commit sink).
	ServerConfig = server.Config
	// ServerSummary is a finished server run: merged history, monitor
	// verdict, overload/sampling counters.
	ServerSummary = server.Summary
	// LoadConfig describes a client-fleet run against one server.
	LoadConfig = loadgen.Config
	// LoadResult is what a fleet run produced: the exactly-once ledger
	// (lost/duplicated), retry counters, latency percentiles.
	LoadResult = loadgen.Result
	// NetFaultSpec is a parsed network fault spec; injections are pure
	// functions of (seed, commit ticket) at the connection seam.
	NetFaultSpec = faults.NetSpec
)

var (
	// NewServer builds a server from its config.
	NewServer = server.New
	// RunLoad drives a retrying client fleet at a server and verifies the
	// exactly-once contract.
	RunLoad = loadgen.Run
	// LoadBackoff is the deterministic reconnect schedule (exponential
	// with splitmix64 jitter, a pure function of seed/client/attempt).
	LoadBackoff = loadgen.Backoff
	// ParseNetFaults parses the network fault grammar
	// ("drop:C@T,partition:T+D,slow:C:LAT").
	ParseNetFaults = faults.ParseNet
	// BuildServer resolves a Scenario into a ready-to-Serve server — the
	// construction half of the serve engine.
	BuildServer = scenario.BuildServer
)
